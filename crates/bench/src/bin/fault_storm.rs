//! Fault storm — TPC-B under seeded program/erase/delta-append failures.
//!
//! Not a paper table: this harness exercises the reliability machinery of
//! §7 end to end. A seeded per-op fault storm (plus scripted bursts that
//! make every fault class fire deterministically even in smoke runs) rains
//! on a TPC-B run; the run must complete with **zero committed-data
//! loss** — audited through the TPC-B money-conservation invariant, once
//! after the run and once more after a crash/recovery cycle — with every
//! retired block accounted for in the stats and every delta-append
//! fallback visible in the trace.
//!
//! `IPA_BENCH_SMOKE=1` shrinks the run for CI; the scripted bursts keep
//! the fault counters non-zero so the CI step can assert on the JSON.
//!
//! The host queue runs at depth 4, so `--trace` yields a queued-I/O span
//! trace — crash recovery included — for `ipa-trace` latency attribution.

use std::sync::{Arc, Mutex};

use ipa_bench::{
    banner, finish_trace, init_trace, scale, smoke, trace_sink, ExperimentReport, FanoutObserver,
    Table, SEED,
};
use ipa_core::NxM;
use ipa_flash::{FaultOp, FaultPlan};
use ipa_noftl::FaultPolicy;
use ipa_obs::{EventKind, MetricsRegistry, ObsEvent, Observer, Snapshot};
use ipa_workloads::{Runner, SystemConfig, TpcB};

/// Trace-side tally of the fault and degradation events.
#[derive(Debug, Default, Clone, Copy)]
struct FaultCounts {
    program_faults: u64,
    delta_faults: u64,
    erase_faults: u64,
    blocks_retired: u64,
    delta_fallbacks: u64,
    scrub_refreshes: u64,
}

#[derive(Clone)]
struct FaultEventCounter(Arc<Mutex<FaultCounts>>);

impl Observer for FaultEventCounter {
    fn on_event(&mut self, event: ObsEvent) {
        let mut c = self.0.lock().expect("fault counter lock");
        match event.kind {
            EventKind::ProgramFault { .. } => c.program_faults += 1,
            EventKind::DeltaFault => c.delta_faults += 1,
            EventKind::EraseFault => c.erase_faults += 1,
            EventKind::BlockRetired => c.blocks_retired += 1,
            EventKind::DeltaFallback => c.delta_fallbacks += 1,
            EventKind::ScrubRefresh => c.scrub_refreshes += 1,
            _ => {}
        }
    }
}

fn main() {
    init_trace("fault_storm");
    banner(
        "Fault storm — TPC-B under seeded program/erase/delta failures",
        "§7 reliability machinery (no paper table; pass criteria: zero committed-data loss)",
    );
    let smoke = smoke();
    let s = scale();
    let (warmup, measured) = if smoke { (150, 600) } else { (2_000, 8_000 * s) };
    let mut w = if smoke { TpcB::new(1, 300) } else { TpcB::new(4, 2_000) };

    // 1e-3 per op across all three classes, a quarter of the program
    // faults permanent — plus scripted bursts so each class fires at a
    // known point even in the shortest smoke run (nth is counted per
    // class from device creation; the early Program bursts land during
    // the load phase, the DeltaProgram one during the measured run).
    let plan = FaultPlan::storm(SEED, 1e-3, 0.25)
        .with_scripted(FaultOp::Program, 25, false)
        .with_scripted(FaultOp::Program, 40, true)
        .with_scripted(FaultOp::DeltaProgram, 2, false)
        .with_scripted(FaultOp::Erase, 0, true);

    // 20% buffer: the eager cleaner keeps ~12.5% of the pool dirty, so
    // the end-of-storm checkpoint has more dirty frames than the queue
    // has slots — real admission waits for the latency attribution.
    let mut cfg = SystemConfig::emulator(NxM::tpcb(), 0.20);
    cfg.fault_plan = plan;
    cfg.fault_policy = FaultPolicy { program_retries: 1, scrub_threshold: 0.5 };
    // Queue depth 4: faults land while other commands are in flight, and a
    // `--trace` run carries real queue-wait time for latency attribution.
    cfg.queue_depth = 4;

    // Drive the run by hand instead of through `run_workload_observed`:
    // the observer attaches *before* the load phase, so the trace tallies
    // cover the whole device lifetime — including the scripted bursts that
    // land while TPC-B loads — where the report counters are reset after
    // warmup and cover only the measured window.
    let counter = FaultEventCounter(Arc::new(Mutex::new(FaultCounts::default())));
    let mut db = cfg.build_for(&w).expect("database builds");
    let mut runner = Runner::new(SEED);
    runner.cpu_ns_per_txn = cfg.cpu_ns_per_txn;
    let mut observers: Vec<Box<dyn Observer>> = vec![Box::new(counter.clone())];
    if let Some(sink) = trace_sink() {
        db.ftl_mut().set_cmd_tracing(true);
        observers.push(sink.observer());
    }
    db.attach_observer(Box::new(FanoutObserver::new(observers)));
    runner.setup(&mut db, &mut w).expect("TPC-B loads under the storm");
    let mut registry = MetricsRegistry::new();
    let every = (measured / 20).max(1);
    let report = runner
        .run_with(&mut db, &mut w, warmup, measured, &mut |db, n| {
            if n % every == 0 || n == measured {
                registry.sample(n, Snapshot::capture(db));
            }
        })
        .expect("TPC-B survives the storm");
    // Checkpoint the dirty pool as one queued batch: at depth 4 the page
    // writes overlap across chips and the trace picks up real host-queue
    // admission waits for `ipa-trace` latency attribution.
    db.flush_all().expect("post-storm checkpoint flushes");
    let series = registry.to_json();

    // Zero-committed-data-loss audit #1: live database after the storm.
    let live_sum = w.verify_balances(&mut db).expect("post-storm balance audit");

    // Audit #2: the same invariant must survive a crash/recovery cycle on
    // top of the fault-scarred device. The observer stays attached so a
    // `--trace` run records the recovery span too.
    db.simulate_crash();
    db.recover().expect("recovery after fault storm");
    // Device histograms at the instant tracing stops: `ipa-trace` windows
    // its attribution after the post-warmup stats reset, so these sums are
    // the counters its queue-wait + busy + service totals must reproduce.
    let traced_window = Snapshot::capture(&db);
    db.detach_observer();
    db.ftl_mut().set_cmd_tracing(false);
    let recovered_sum = w.verify_balances(&mut db).expect("post-recovery balance audit");
    assert_eq!(live_sum, recovered_sum, "recovery changed the committed balance total");

    let snap = Snapshot::capture(&db);
    let region = snap.region_total();
    let flash = &snap.flash;
    let traced = *counter.0.lock().expect("fault counter lock");

    // Every retired block is accounted for: device and region bookkeeping
    // agree (regions retire blocks only through the device; both counters
    // were reset at the same instant after warmup).
    assert_eq!(
        flash.retired_blocks, region.retired_blocks,
        "device and region retired-block counts disagree"
    );
    // The scripted bursts guarantee faults even in smoke runs; the trace
    // covers the whole device lifetime, so it must have seen them.
    assert!(traced.program_faults >= 2, "scripted program bursts did not fire");
    assert!(traced.delta_faults >= 1, "scripted delta burst did not fire");
    assert!(traced.blocks_retired >= 1, "permanent program fault retired no block");
    // Every delta-append failure is visible in the trace as a fallback.
    assert_eq!(
        traced.delta_fallbacks, traced.delta_faults,
        "a failed delta append left no fallback in the trace"
    );
    assert_eq!(
        region.delta_fallbacks, flash.delta_program_failures,
        "every failed delta append must fall back out of place"
    );

    let mut t = Table::new(&["metric", "value"]);
    for (name, v) in [
        ("committed txns", report.commits as f64),
        ("committed balance total", live_sum as f64),
        ("program failures (flash)", flash.program_failures as f64),
        ("delta-append failures (flash)", flash.delta_program_failures as f64),
        ("erase failures (flash)", flash.erase_failures as f64),
        ("blocks retired", flash.retired_blocks as f64),
        ("program retries (region)", region.program_retries as f64),
        ("delta fallbacks (region)", region.delta_fallbacks as f64),
        ("scrub refreshes (region)", region.scrub_refreshes as f64),
        ("fault events in trace", {
            (traced.program_faults + traced.delta_faults + traced.erase_faults) as f64
        }),
        ("read retries (engine)", snap.engine.read_retries as f64),
        ("recovery page rebuilds (engine)", snap.engine.recovery_page_rebuilds as f64),
    ] {
        t.row(vec![name.to_string(), format!("{v:.0}")]);
    }
    let mut rep = ExperimentReport::new("fault_storm");
    rep.print_table(&t);
    println!("\nzero committed-data loss: balance sums match the committed deltas");
    println!("({live_sum}) before and after crash recovery, under every injected fault.");

    let flash_json = serde_json::json!({
        "program_failures": flash.program_failures,
        "delta_program_failures": flash.delta_program_failures,
        "erase_failures": flash.erase_failures,
        "retired_blocks": flash.retired_blocks,
    });
    let region_json = serde_json::json!({
        "program_retries": region.program_retries,
        "retired_blocks": region.retired_blocks,
        "delta_fallbacks": region.delta_fallbacks,
        "scrub_refreshes": region.scrub_refreshes,
    });
    let trace_json = serde_json::json!({
        "program_faults": traced.program_faults,
        "delta_faults": traced.delta_faults,
        "erase_faults": traced.erase_faults,
        "blocks_retired": traced.blocks_retired,
        "delta_fallbacks": traced.delta_fallbacks,
        "scrub_refreshes": traced.scrub_refreshes,
    });
    let engine_json = serde_json::json!({
        "read_retries": snap.engine.read_retries,
        "recovery_page_rebuilds": snap.engine.recovery_page_rebuilds,
    });
    // Ground truth for `ipa-trace` reconciliation over the traced window.
    let tw = &traced_window.flash;
    let latency_json = serde_json::json!({
        "read_count": tw.read_latency.count(),
        "read_sum_ns": tw.read_latency.sum_ns() as u64,
        "write_count": tw.write_latency.count(),
        "write_sum_ns": tw.write_latency.sum_ns() as u64,
        "queue_wait_ns_total": tw.queue_wait_ns_total,
        "queue_waits": tw.queue_waits,
        "queue_highwater": tw.queue_highwater,
    });
    rep.set_payload(serde_json::json!({
        "commits": report.commits,
        "committed_balance_total": live_sum,
        "zero_data_loss": true,
        "survived_recovery": true,
        "flash": flash_json,
        "region": region_json,
        "trace": trace_json,
        "engine": engine_json,
        "latency": latency_json,
    }));
    rep.push_timeseries(serde_json::json!({ "run": "fault_storm", "points": series }));
    rep.save();
    finish_trace();
}
