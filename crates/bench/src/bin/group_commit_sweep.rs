//! Group-commit sweep — K clients × batch threshold × queue depth on the
//! emulator profile (DESIGN.md, "Concurrency & group commit").
//!
//! Each cell runs the same total number of TPC-B Account_Update
//! transactions through the deterministic [`ipa_engine::ClientPool`],
//! with a simulated log-force latency so the amortization is visible:
//! a serial commit pays one force per transaction, a batch of B pays one
//! force for B acknowledgements. Reported per cell: WAL forces per
//! committed transaction (headline: `<= 1/B` once K clients keep a batch
//! fillable), commit throughput relative to the K=1/batch=1 serial
//! baseline, commit-latency percentiles (begin to durability ack), the
//! batch-size histogram, and the lock manager's wait/restart counters.
//! The money-conservation audit (`TpcB::verify_balances`) runs after
//! every cell — an interleaving that loses a committed delta aborts the
//! sweep.

use std::collections::BTreeMap;

use ipa_bench::{banner, fmt, smoke, ExperimentReport, Table, SEED};
use ipa_core::NxM;
use ipa_engine::{LockPolicy, Schedule};
use ipa_workloads::{MultiRunner, SystemConfig, TpcB, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Simulated log-device force latency. Zero (the legacy free-force
/// model) would hide the amortization entirely; 1 ms models a SATA-class flush
/// (an order above the paper's SLC program time).
const LOG_FORCE_NS: u64 = 1_000_000;
/// CPU/think time per transaction — the emulator profile's value, so a
/// fully-buffered serial run is CPU-plus-force bound.
const CPU_NS_PER_TXN: u64 = 200_000;
/// Flush under-filled batches after this long on the simulated clock
/// (covers cells where the batch threshold exceeds the client count).
const TIMEOUT_NS: u64 = 4_000_000;

struct Cell {
    k: usize,
    batch: usize,
    queue_depth: u32,
    tps: f64,
    tps_vs_serial: f64,
    forces_per_commit: f64,
    group_commits: u64,
    batch_hist: BTreeMap<u32, u32>,
    p50_us: f64,
    p99_us: f64,
    lock_waits: u64,
    restarts: u64,
    deadlock_aborts: u64,
    conserved: i64,
}

fn run_cell(k: usize, batch: usize, queue_depth: u32, total_txns: u64) -> Cell {
    let mut cfg = SystemConfig::emulator(NxM::tpcb(), 0.20);
    cfg.queue_depth = queue_depth;
    cfg.group_commit_batch = batch;
    cfg.group_commit_timeout_ns = if batch > 1 { TIMEOUT_NS } else { 0 };
    cfg.log_force_ns = LOG_FORCE_NS;
    cfg.lock_policy = if k > 1 { LockPolicy::WaitDie } else { LockPolicy::NoWait };
    cfg.cpu_ns_per_txn = CPU_NS_PER_TXN;

    let mut w = TpcB::new(8, 1_000);
    let mut db = cfg.build_for(&w).expect("emulator database builds");
    let mut rng = StdRng::seed_from_u64(SEED);
    w.setup(&mut db, &mut rng).expect("TPC-B load");

    let shared = w.into_shared();
    let clients = TpcB::spawn_clients(&shared, k, total_txns / k as u64, SEED);
    let mut runner = MultiRunner::new(SEED);
    runner.cpu_ns_per_txn = CPU_NS_PER_TXN;
    runner.schedule = Schedule::RoundRobin;
    let r = runner.run(&mut db, clients).expect("pool run");

    let conserved =
        shared.borrow().verify_balances(&mut db).expect("money conserved across interleaving");

    let mut batch_hist = BTreeMap::new();
    for &size in db.group_batch_sizes() {
        *batch_hist.entry(size).or_insert(0u32) += 1;
    }
    Cell {
        k,
        batch,
        queue_depth,
        tps: r.tps,
        tps_vs_serial: 0.0,
        forces_per_commit: r.wal_forces_per_commit(),
        group_commits: r.engine.group_commits,
        batch_hist,
        p50_us: r.pool.latency_percentile(50.0) as f64 / 1e3,
        p99_us: r.pool.latency_percentile(99.0) as f64 / 1e3,
        lock_waits: r.pool.lock_waits,
        restarts: r.pool.restarts,
        deadlock_aborts: r.engine.deadlock_aborts,
        conserved,
    }
}

fn main() {
    banner(
        "Group-commit sweep — K clients x batch threshold x queue depth",
        "DESIGN.md 'Concurrency & group commit' (log-force amortization)",
    );
    let smoke = smoke();
    // Same committed-transaction total in every cell, split across the K
    // clients, so TPS cells are directly comparable.
    let total_txns: u64 = if smoke { 800 } else { 8_000 };

    let mut report = ExperimentReport::new("group_commit_sweep");
    let mut json = Vec::new();
    let mut serial_tps = 0.0;
    for queue_depth in [1u32, 4] {
        let mut t = Table::new(&[
            "K",
            "batch",
            "qd",
            "tps",
            "vs serial",
            "forces/txn",
            "group commits",
            "p50 us",
            "p99 us",
            "waits",
            "restarts",
        ]);
        for k in [1usize, 2, 4, 8] {
            for batch in [1usize, 4, 8] {
                let mut c = run_cell(k, batch, queue_depth, total_txns);
                if k == 1 && batch == 1 && queue_depth == 1 {
                    serial_tps = c.tps;
                }
                c.tps_vs_serial = if serial_tps > 0.0 { c.tps / serial_tps } else { 0.0 };
                t.row(vec![
                    c.k.to_string(),
                    c.batch.to_string(),
                    c.queue_depth.to_string(),
                    fmt::f2(c.tps),
                    format!("{:.2}x", c.tps_vs_serial),
                    fmt::f4(c.forces_per_commit),
                    c.group_commits.to_string(),
                    fmt::f2(c.p50_us),
                    fmt::f2(c.p99_us),
                    c.lock_waits.to_string(),
                    c.restarts.to_string(),
                ]);
                json.push(serde_json::json!({
                    "k": c.k, "batch": c.batch, "queue_depth": c.queue_depth,
                    "tps": c.tps, "tps_vs_serial": c.tps_vs_serial,
                    "wal_forces_per_txn": c.forces_per_commit,
                    "group_commits": c.group_commits,
                    "batch_histogram": c.batch_hist.iter()
                        .map(|(&size, &count)| serde_json::json!({"size": size, "count": count}))
                        .collect::<Vec<_>>(),
                    "commit_latency_p50_us": c.p50_us,
                    "commit_latency_p99_us": c.p99_us,
                    "lock_waits": c.lock_waits, "restarts": c.restarts,
                    "deadlock_aborts": c.deadlock_aborts,
                    "committed_delta": c.conserved,
                }));
            }
        }
        println!("\n--- queue depth {queue_depth} ---");
        report.print_table(&t);
    }

    // The acceptance cell: K=8, batch 8, queue depth 4.
    let accept = json
        .iter()
        .find(|c| c["k"] == 8 && c["batch"] == 8 && c["queue_depth"] == 4)
        .expect("acceptance cell present");
    let forces = accept["wal_forces_per_txn"].as_f64().unwrap();
    let speedup = accept["tps_vs_serial"].as_f64().unwrap();
    println!("\nacceptance (K=8, batch 8, qd 4): {forces:.4} forces/txn, {speedup:.2}x serial");
    assert!(forces <= 0.25, "group commit must amortize >= 4x ({forces:.4} forces/txn)");
    assert!(speedup >= 2.0, "group commit must be >= 2x serial throughput ({speedup:.2}x)");
    println!("paper shape: forces/txn falls toward 1/batch as K covers the threshold;");
    println!("throughput rises because the force wait is shared by the whole batch.");

    report.set_payload(serde_json::json!({
        "log_force_ns": LOG_FORCE_NS,
        "cpu_ns_per_txn": CPU_NS_PER_TXN,
        "total_txns": total_txns,
        "acceptance": {
            "k": 8, "batch": 8, "queue_depth": 4,
            "wal_forces_per_txn": forces,
            "tps_vs_serial": speedup,
        },
        "cells": json,
    }));
    report.save();
}
