//! Table 1 — update-size percentiles under 75% buffers, eager eviction.
//!
//! Paper: the percentile of update I/Os changing at most 3 / 7 / 20 / 100 /
//! 125 bytes, for TPC-B and TPC-C (net data) and LinkBench (gross data).

use ipa_bench::{banner, finish_trace, init_trace, run_workload, scale, ExperimentReport, Table};
use ipa_core::NxM;
use ipa_workloads::{LinkBench, SystemConfig, TpcB, TpcC, Workload};

const THRESHOLDS: [u32; 5] = [3, 7, 20, 100, 125];
// Paper Table 1 values (percentile reached at each threshold).
const PAPER_TPCB: [u32; 5] = [10, 62, 99, 99, 99];
const PAPER_TPCC: [u32; 5] = [55, 83, 88, 93, 94];
const PAPER_LINKBENCH: [u32; 5] = [0, 0, 5, 40, 50];

fn measure(name: &str, cfg: &SystemConfig, w: &mut dyn Workload, txns: u64) -> Vec<f64> {
    let (_, db) = run_workload(cfg, w, txns / 5, txns);
    let profile = db.profile(0);
    println!("  {name}: {} update I/Os observed", profile.observations());
    THRESHOLDS.iter().map(|&b| profile.body_cdf(b) * 100.0).collect()
}

fn main() {
    init_trace("table1_update_sizes");
    banner(
        "Table 1 — update sizes in TPC-B/-C and LinkBench (buffer 75%, eager)",
        "paper Table 1 (percentile of update I/Os changing <= N bytes)",
    );
    let s = scale();

    let mut tpcb = TpcB::new(4, 4_000 * s);
    let tpcb_cdf =
        measure("TPC-B", &SystemConfig::emulator(NxM::tpcb(), 0.75), &mut tpcb, 10_000 * s);

    let mut tpcc = TpcC::new(2, 4_000 * s, 300);
    let tpcc_cdf =
        measure("TPC-C", &SystemConfig::emulator(NxM::tpcc(), 0.75), &mut tpcc, 8_000 * s);

    let mut lb_cfg = SystemConfig::emulator(NxM::linkbench(), 0.75);
    lb_cfg.page_size = 8192;
    let mut lb = LinkBench::new(4_000 * s, 4);
    let lb_cdf = measure("LinkBench", &lb_cfg, &mut lb, 8_000 * s);

    let mut t = Table::new(&[
        "<= bytes",
        "TPC-B paper",
        "TPC-B meas",
        "TPC-C paper",
        "TPC-C meas",
        "LinkB paper",
        "LinkB meas",
    ]);
    for (i, &b) in THRESHOLDS.iter().enumerate() {
        t.row(vec![
            b.to_string(),
            format!("{}th", PAPER_TPCB[i]),
            format!("{:.0}th", tpcb_cdf[i]),
            format!("{}th", PAPER_TPCC[i]),
            format!("{:.0}th", tpcc_cdf[i]),
            format!("{}th", PAPER_LINKBENCH[i]),
            format!("{:.0}th", lb_cdf[i]),
        ]);
    }
    let mut out = ExperimentReport::new("table1_update_sizes");
    out.print_table(&t);
    println!("\nshape check: TPC percentiles front-loaded (small updates dominate),");
    println!("LinkBench shifted to larger sizes with mass below ~125B.");

    out.set_payload(serde_json::json!({
        "thresholds": THRESHOLDS,
        "tpcb": tpcb_cdf, "tpcc": tpcc_cdf, "linkbench": lb_cdf,
    }));
    out.save();
    finish_trace();
}
