//! Table 7 — TPC-B on the flash emulator: buffers 10% and 20%, schemes
//! `[2×4]` and `[3×4]` relative to `[0×0]`.
//!
//! Pass `--trace` to additionally stream every flash/engine event to
//! `bench-results/table7_tpcb_emulator.trace.jsonl` and embed a sampled
//! metrics time series in the result JSON (the final cumulative point of
//! each run equals the end-of-run counters behind the table).

use ipa_bench::{
    banner, finish_trace, fmt, init_trace, rel, run_workload, run_workload_observed, scale, smoke,
    ExperimentReport, Table,
};
use ipa_core::NxM;
use ipa_workloads::{RunReport, SystemConfig, TpcB};

// Paper Table 7 relative values: rows x (2x4@10, 3x4@10, 2x4@20, 3x4@20).
const PAPER: [(&str, [f64; 4]); 7] = [
    ("GC page migrations", [-48.0, -58.0, -42.0, -52.0]),
    ("GC erases", [-55.0, -64.0, -51.0, -59.0]),
    ("migrations / host write", [-61.0, -70.0, -56.0, -67.0]),
    ("erases / host write", [-66.0, -75.0, -63.0, -71.0]),
    ("READ I/O response [ms]", [-46.0, -52.0, -41.0, -50.0]),
    ("WRITE I/O response [ms]", [-34.0, -40.0, -30.0, -41.0]),
    ("transactional throughput", [31.0, 41.0, 34.0, 42.0]),
];

fn metrics(r: &RunReport) -> [f64; 7] {
    [
        r.region.gc_page_migrations as f64,
        r.region.gc_erases as f64,
        r.region.migrations_per_host_write(),
        r.region.erases_per_host_write(),
        r.read_ms,
        r.write_ms,
        r.tps,
    ]
}

fn main() {
    banner(
        "Table 7 — TPC-B on the flash emulator: [0x0] vs [2x4] and [3x4]",
        "paper Table 7 (buffers 10% / 20%)",
    );
    let sink = init_trace("table7_tpcb_emulator");
    let trace = sink.is_some();
    // Smoke mode (IPA_BENCH_SMOKE): a tiny run that still exercises the
    // observed pipeline, so CI can assert the result JSON carries a
    // populated `timeseries` array.
    let smoke = smoke();
    let s = scale();
    let txns = if smoke { 400 } else { 12_000 * s };

    let mut report = ExperimentReport::new("table7_tpcb_emulator");
    let mut json = Vec::new();
    let mut series = Vec::new();
    for (bi, buffer) in [0.10, 0.20].into_iter().enumerate() {
        println!("\n--- buffer {:.0}% ---", buffer * 100.0);
        let mut run = |scheme: NxM, label: &str| {
            let cfg = SystemConfig::emulator(scheme, buffer);
            let mut w = if smoke { TpcB::new(1, 300) } else { TpcB::new(8, 8_000 * s) };
            if trace || smoke {
                let (r, _, points) = run_workload_observed(
                    &cfg,
                    &mut w,
                    txns / 5,
                    txns,
                    sink.as_ref().map(|s| s.observer()),
                    (txns / 20).max(1),
                );
                series.push(serde_json::json!({
                    "run": label, "buffer": buffer, "points": points,
                }));
                r
            } else {
                run_workload(&cfg, &mut w, txns / 5, txns).0
            }
        };
        let base = run(NxM::disabled(), "0x0");
        let two = run(NxM::tpcb(), "2x4");
        let three = run(NxM::new(3, 4, 12), "3x4");
        let (b, t2, t3) = (metrics(&base), metrics(&two), metrics(&three));

        let (o2, i2) = two.oop_vs_ipa();
        let (o3, i3) = three.oop_vs_ipa();
        println!(
            "OoP/IPA: [2x4] {} (paper 33/67 resp. 35/65), [3x4] {} (paper 24/76 resp. 25/75)",
            fmt::split(o2, i2),
            fmt::split(o3, i3)
        );

        let mut t = Table::new(&["metric", "[0x0] abs", "[2x4] rel (paper)", "[3x4] rel (paper)"]);
        for i in 0..7 {
            let (name, p) = PAPER[i];
            let r2 = rel(b[i], t2[i]);
            let r3 = rel(b[i], t3[i]);
            t.row(vec![
                name.to_string(),
                fmt::f4(b[i]),
                format!("{} ({:+.0}%)", fmt::pct(r2), p[bi * 2]),
                format!("{} ({:+.0}%)", fmt::pct(r3), p[bi * 2 + 1]),
            ]);
            json.push(serde_json::json!({
                "buffer": buffer, "metric": name, "baseline": b[i],
                "rel_2x4_pct": r2, "rel_3x4_pct": r3,
            }));
        }
        report.print_table(&t);
    }
    println!("\npaper shape: GC work and I/O latencies fall sharply, throughput rises;");
    println!("[3x4] beats [2x4] on every GC metric.");
    report.set_payload(serde_json::Value::Array(json));
    for run_series in series {
        report.push_timeseries(run_series);
    }
    report.save();
    finish_trace();
}
