//! §8.4 extras — the IPA advisor and two design ablations.
//!
//! 1. **Advisor**: profile a live TPC-C run, then ask the advisor for
//!    `(N, M, V)` under each optimization goal — the paper's claim is that
//!    M=3 is "the natural choice" for TPC-C.
//! 2. **Byte-level vs full-metadata tracking**: §6.1 states byte-level
//!    metadata tracking shrinks the delta area by 49% for `[2×3]` compared
//!    to storing the complete page metadata in each record.
//! 3. **write_delta vs page write cost**: the device-level latency gap
//!    that makes appends worthwhile.

use ipa_bench::{
    banner, finish_trace, fmt, init_trace, run_workload, scale, scheme_name, ExperimentReport,
    Table,
};
use ipa_core::{AdvisorGoal, IpaAdvisor, NxM};
use ipa_flash::{FlashConfig, FlashDevice, OpOrigin, Ppa};
use ipa_workloads::{SystemConfig, TpcC};

fn main() {
    init_trace("advisor_ablation");
    banner(
        "IPA advisor + design ablations",
        "paper §8.4 (advisor), §6.1 (byte-level metadata, 49% claim), §4 (append cost)",
    );
    let s = scale();
    let mut report = ExperimentReport::new("advisor_ablation");

    // --- 1. Advisor over a live TPC-C profile ---
    let cfg = SystemConfig::emulator(NxM::disabled(), 0.5);
    let mut w = TpcC::new(1, 3_000 * s, 300);
    let (_, db) = run_workload(&cfg, &mut w, 1_000 * s, 6_000 * s);
    let profile = db.profile(0);
    println!("profile: {} update I/Os observed", profile.observations());
    let advisor = IpaAdvisor::new(4096, 8);
    let mut t = Table::new(&["goal", "recommended", "V", "predicted IPA %", "space %"]);
    let mut json = serde_json::Map::new();
    for (name, goal) in [
        ("performance", AdvisorGoal::Performance),
        ("longevity", AdvisorGoal::Longevity),
        ("space", AdvisorGoal::Space),
    ] {
        let rec = advisor.recommend(profile, goal);
        t.row(vec![
            name.to_string(),
            scheme_name(&rec.scheme),
            rec.scheme.v.to_string(),
            format!("{:.0}%", rec.predicted_ipa_fraction * 100.0),
            format!("{:.2}%", rec.space_overhead * 100.0),
        ]);
        json.insert(
            name.into(),
            serde_json::json!({
                "n": rec.scheme.n, "m": rec.scheme.m, "v": rec.scheme.v,
                "predicted_ipa": rec.predicted_ipa_fraction,
                "space_overhead": rec.space_overhead,
            }),
        );
    }
    report.print_table(&t);
    println!("paper: the natural TPC-C choice is M=3 (50-75% of updates change <= 3 net bytes)\n");

    // --- 2. Byte-level vs full-metadata delta records ---
    // Byte-level: V pairs of <value, offset> (V=12 in practice). The
    // alternative stores the complete page metadata (32B header + ~12
    // slot-table entries * 4B ≈ 80 bytes) in every record.
    let byte_level = NxM::tpcc().delta_record_size(); // 1 + 3*3 + 3*12 = 46
    let full_meta = 1 + 3 * 3 + 80;
    let saving = 1.0 - byte_level as f64 / full_meta as f64;
    println!("byte-level record [2x3]: {byte_level} B; full-metadata variant: {full_meta} B");
    println!(
        "-> byte-level tracking saves {:.0}% of the delta area (paper: 49%)\n",
        saving * 100.0
    );

    // --- 3. write_delta vs full page program on the device ---
    let mut dev = FlashDevice::new(FlashConfig::small_slc());
    let page_size = dev.config().geometry.page_size;
    let ppa = Ppa::new(0, 0, 0);
    let mut image = vec![0xFF; page_size];
    image[..1024].fill(0x42);
    let full = dev.program(ppa, &image, OpOrigin::Host).unwrap();
    let delta = dev.program_partial(ppa, page_size - 92, &[0x13; 46], OpOrigin::Host).unwrap();
    println!(
        "device latency: full 4KB program {} us, 46B delta append {} us ({}x cheaper)",
        full.latency_ns / 1000,
        delta.latency_ns / 1000,
        fmt::f2(full.latency_ns as f64 / delta.latency_ns as f64)
    );

    json.insert(
        "ablation".into(),
        serde_json::json!({
            "byte_level_record_bytes": byte_level,
            "full_meta_record_bytes": full_meta,
            "saving_pct": saving * 100.0,
            "full_program_ns": full.latency_ns,
            "delta_append_ns": delta.latency_ns,
        }),
    );
    report.set_payload(serde_json::Value::Object(json));
    report.save();
    finish_trace();
}
