//! Table 9 — TPC-C with eager eviction across buffer sizes 10%–90%:
//! `[0×0]` absolute vs `[2×3]` relative.
//!
//! The paper's headline nuance lives here: the *throughput* gain fades as
//! the buffer grows (little read I/O left to save), but the GC metrics
//! (`migrations / erases per host write`) keep improving by ~29–49% even
//! at 90% buffers — the longevity benefit is buffer-independent.

use ipa_bench::{
    banner, finish_trace, fmt, init_trace, rel, run_workload, scale, ExperimentReport, Table,
};
use ipa_core::NxM;
use ipa_workloads::{RunReport, SystemConfig, TpcC};

// Paper Table 9, [2x3] relative %: rows x buffers (10,20,50,75,90).
const PAPER: [(&str, [f64; 5]); 6] = [
    ("GC page migrations", [-38.4, -36.0, -31.7, -29.1, -28.5]),
    ("GC erases", [-40.8, -39.5, -37.7, -34.8, -33.8]),
    ("migrations / host write", [-46.8, -45.0, -37.6, -35.4, -28.9]),
    ("erases / host write", [-48.9, -48.0, -43.0, -40.7, -34.1]),
    ("READ I/O response [ms]", [-29.1, -31.6, -31.1, -21.3, -2.9]),
    ("transactional throughput", [15.3, 15.4, 6.3, 1.2, 0.2]),
];

fn metrics(r: &RunReport) -> [f64; 6] {
    [
        r.region.gc_page_migrations as f64,
        r.region.gc_erases as f64,
        r.region.migrations_per_host_write(),
        r.region.erases_per_host_write(),
        r.read_ms,
        r.tps,
    ]
}

fn main() {
    init_trace("table9_tpcc_buffers");
    banner("Table 9 — TPC-C, eager eviction, buffers 10%-90%: [0x0] vs [2x3]", "paper Table 9");
    let s = scale();
    let buffers = [0.10, 0.20, 0.50, 0.75, 0.90];
    let txns = 8_000 * s;

    let mut measured: Vec<([f64; 6], [f64; 6], f64)> = Vec::new();
    for &buffer in &buffers {
        let run = |scheme: NxM| {
            let cfg = SystemConfig::emulator(scheme, buffer);
            let mut w = TpcC::new(1, 3_000 * s, 300);
            let (report, _) = run_workload(&cfg, &mut w, txns / 5, txns);
            report
        };
        let base = run(NxM::disabled());
        let ipa = run(NxM::tpcc());
        measured.push((metrics(&base), metrics(&ipa), ipa.region.ipa_fraction() * 100.0));
    }

    let mut header = vec!["metric".to_string()];
    for b in buffers {
        header.push(format!("buf {:.0}% rel (paper)", b * 100.0));
    }
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    let mut ipa_row = vec!["IPA share of host writes".to_string()];
    for (_, _, f) in &measured {
        ipa_row.push(format!("{f:.0}% (44-49%)"));
    }
    t.row(ipa_row);
    let mut json = Vec::new();
    for (mi, (name, paper)) in PAPER.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (bi, (b, i, _)) in measured.iter().enumerate() {
            let r = rel(b[mi], i[mi]);
            row.push(format!("{} ({:+.0}%)", fmt::pct(r), paper[bi]));
            json.push(serde_json::json!({
                "metric": name, "buffer": buffers[bi], "baseline": b[mi], "rel_pct": r,
            }));
        }
        t.row(row);
    }
    let mut out = ExperimentReport::new("table9_tpcc_buffers");
    out.print_table(&t);
    println!("\npaper shape: GC reductions persist at all buffer sizes (29-49%),");
    println!("while throughput and read-latency gains fade as the buffer grows.");
    out.set_payload(serde_json::Value::Array(json));
    out.save();
    finish_trace();
}
