//! Figure 6 — fraction of update I/Os performed as in-place appends in
//! LinkBench, across buffer sizes and `[N×M]` schemes.

use ipa_bench::{
    banner, finish_trace, init_trace, run_workload, scale, scheme_name, ExperimentReport, Table,
};
use ipa_core::NxM;
use ipa_workloads::{LinkBench, SystemConfig};

fn main() {
    init_trace("fig6_linkbench_ipa");
    banner(
        "Figure 6 — IPA fraction of update I/Os in LinkBench",
        "paper Figure 6 / Table 5 black numbers (e.g. [2x125] ~ 35-43%)",
    );
    let s = scale();
    let schemes =
        [NxM::new(1, 100, 12), NxM::new(2, 100, 12), NxM::new(2, 125, 12), NxM::new(3, 125, 12)];
    let buffers = [0.20, 0.50, 0.75, 0.90];
    let txns = 5_000 * s;

    let mut header = vec!["scheme".to_string()];
    for b in buffers {
        header.push(format!("buf {:.0}%", b * 100.0));
    }
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    let mut json = Vec::new();
    for scheme in schemes {
        let mut row = vec![scheme_name(&scheme)];
        for buffer in buffers {
            let mut cfg = SystemConfig::emulator(scheme, buffer);
            cfg.page_size = 8192;
            let mut w = LinkBench::new(2_000 * s, 4);
            let (report, _) = run_workload(&cfg, &mut w, txns / 5, txns);
            let f = report.region.ipa_fraction() * 100.0;
            row.push(format!("{f:.1}%"));
            json.push(serde_json::json!({
                "scheme": scheme_name(&scheme), "buffer": buffer, "ipa_pct": f,
            }));
        }
        t.row(row);
    }
    let mut out = ExperimentReport::new("fig6_linkbench_ipa");
    out.print_table(&t);
    println!("\npaper shape: the fraction rises with N and M and falls with buffer");
    println!("size (accumulated updates overflow the delta area).");
    out.set_payload(serde_json::Value::Array(json));
    out.save();
    finish_trace();
}
