//! Figure 1 — the layer-by-layer write amplification of a small update.
//!
//! The paper's motivating chain: ~10 changed bytes → whole-tuple +
//! header/footer changes → a 4 KiB page write → on-device GC overhead,
//! i.e. a write amplification of several hundred times. This harness
//! measures each layer on a live TPC-B run without IPA, then shows the
//! same chain with the `[2×4]` scheme.

use ipa_bench::{
    banner, finish_trace, fmt, init_trace, run_workload, scale, ExperimentReport, Table,
};
use ipa_core::NxM;
use ipa_workloads::{SystemConfig, TpcB};

fn main() {
    init_trace("fig1_amplification");
    banner(
        "Figure 1 — write amplification of small updates",
        "paper Figure 1: a <10B update causes a 4-8KB page write, 400-800x amplification",
    );
    let s = scale();
    let measured = 6_000 * s;
    let mut out = ExperimentReport::new("fig1_amplification");

    let mut rows = Vec::new();
    let mut json = serde_json::Map::new();
    for (label, scheme) in [("no IPA [0x0]", NxM::disabled()), ("IPA [2x4]", NxM::tpcb())] {
        let cfg = SystemConfig::emulator(scheme, 0.25);
        let mut w = TpcB::new(4, 4_000 * s);
        let (report, db) = run_workload(&cfg, &mut w, 1_000, measured);
        let e = &report.engine;
        let net = e.net_changed_bytes;
        let dbms_gross = e.gross_written_bytes;
        let flash = db.ftl().device().stats();
        let page = cfg.page_size as u64;
        let device_gross = (flash.host_programs + flash.gc_programs) * page + flash.delta_bytes;
        rows.push((
            label,
            net,
            dbms_gross,
            device_gross,
            dbms_gross as f64 / net as f64,
            device_gross as f64 / net as f64,
        ));
        json.insert(
            label.to_string(),
            serde_json::json!({
                "net_changed_bytes": net,
                "dbms_written_bytes": dbms_gross,
                "device_written_bytes": device_gross,
                "dbms_write_amplification": dbms_gross as f64 / net as f64,
                "total_write_amplification": device_gross as f64 / net as f64,
            }),
        );
    }

    let mut t = Table::new(&[
        "configuration",
        "net changed B",
        "DBMS written B",
        "device written B",
        "DBMS WA (x)",
        "total WA (x)",
    ]);
    for (label, net, dbms, dev, wa1, wa2) in &rows {
        t.row(vec![
            label.to_string(),
            net.to_string(),
            dbms.to_string(),
            dev.to_string(),
            fmt::f2(*wa1),
            fmt::f2(*wa2),
        ]);
    }
    out.print_table(&t);

    let base_wa = rows[0].5;
    let ipa_wa = rows[1].5;
    println!("\npaper: traditional WA of several hundred times; IPA reduces it 2x-3x");
    println!(
        "measured: baseline total WA {:.0}x, IPA total WA {:.0}x -> {:.2}x reduction",
        base_wa,
        ipa_wa,
        base_wa / ipa_wa
    );
    out.set_payload(serde_json::Value::Object(json));
    out.save();
    finish_trace();
}
