//! Table 2 — IPA versus In-Page Logging on identical traces.
//!
//! Methodology as in §8.3: record an engine trace (page fetches + dirty
//! evictions with changed-byte counts) for TPC-B, TPC-C and TATP, then
//! replay *the same trace* through the IPL simulator, computing both
//! Appendix B formula sets. The runs use 8 KiB logical pages matching the
//! original IPL configuration (4 × 2 KiB physical pages, `ppl = 4`).

use ipa_bench::{
    attach_trace, banner, finish_trace, fmt, init_trace, scale, ExperimentReport, Table, SEED,
};
use ipa_core::NxM;
use ipa_ipl::{Amplification, IplConfig, IplSimulator};
use ipa_workloads::{Runner, SystemConfig, Tatp, TpcB, TpcC, Workload};

// Paper Table 2 values: (WA_IPA, WA_IPL, RA_IPA, RA_IPL, erases_IPA, erases_IPL).
const PAPER: [(&str, f64, f64, f64, f64, u64, u64); 3] = [
    ("TPC-B", 0.54, 1.43, 1.01, 2.54, 35_958, 137_962),
    ("TPC-C", 0.94, 1.22, 1.06, 2.20, 41_486, 58_294),
    ("TATP", 0.64, 1.01, 1.01, 2.07, 11_873, 30_155),
];

struct Row {
    name: &'static str,
    ipa: Amplification,
    ipl: Amplification,
    ipa_erases: u64,
    ipl_erases: u64,
}

fn run_one(name: &'static str, scheme: NxM, w: &mut dyn Workload, txns: u64) -> Row {
    let mut cfg = SystemConfig::emulator(scheme, 0.25);
    cfg.page_size = 8192;
    let mut db = cfg.build(w.estimated_pages(cfg.page_size)).expect("build");
    let runner = Runner::new(SEED);
    runner.setup(&mut db, w).expect("setup");
    runner.run(&mut db, w, 0, txns / 5).expect("warmup");
    db.enable_tracing();
    let traced = attach_trace(&mut db);
    let report = runner.run(&mut db, w, 0, txns).expect("measured");
    if traced {
        db.detach_observer();
        db.ftl_mut().set_cmd_tracing(false);
    }
    let trace = db.take_trace();

    // IPL side: replay the identical trace.
    let mut ipl = IplSimulator::new(IplConfig::paper());
    ipl.replay(&trace);

    // IPA side: the Appendix B formulas over the actual run counters.
    let evictions = report.engine.ipa_flushes + report.engine.oop_flushes;
    let ipa = Amplification::ipa(
        report.region.host_delta_writes,
        report.region.host_page_writes,
        report.region.gc_page_migrations,
        evictions,
        report.region.host_reads,
        4,
    );
    Row {
        name,
        ipa,
        ipl: ipl.amplification(),
        ipa_erases: report.region.gc_erases,
        ipl_erases: ipl.stats().erases,
    }
}

fn main() {
    init_trace("table2_ipl_vs_ipa");
    banner(
        "Table 2 — comparison of IPA to IPL",
        "paper Table 2 + Appendix B formulas; same traces replayed through both models",
    );
    let s = scale();

    let mut tpcb = TpcB::new(4, 4_000 * s);
    let mut tpcc = TpcC::new(2, 4_000 * s, 300);
    let mut tatp = Tatp::new(15_000 * s);
    let rows = [
        run_one("TPC-B", NxM::tpcb(), &mut tpcb, 12_000 * s),
        run_one("TPC-C", NxM::tpcc(), &mut tpcc, 8_000 * s),
        run_one("TATP", NxM::tpcb(), &mut tatp, 15_000 * s),
    ];

    let mut t = Table::new(&[
        "workload",
        "WA IPA (paper)",
        "WA IPL (paper)",
        "RA IPA (paper)",
        "RA IPL (paper)",
        "erases IPA",
        "erases IPL",
        "IPA wins",
    ]);
    let mut json = serde_json::Map::new();
    for (row, paper) in rows.iter().zip(PAPER.iter()) {
        let wins = row.ipa.write < row.ipl.write
            && row.ipa.read < row.ipl.read
            && row.ipa_erases < row.ipl_erases;
        t.row(vec![
            row.name.to_string(),
            format!("{} ({})", fmt::f2(row.ipa.write), fmt::f2(paper.1)),
            format!("{} ({})", fmt::f2(row.ipl.write), fmt::f2(paper.2)),
            format!("{} ({})", fmt::f2(row.ipa.read), fmt::f2(paper.3)),
            format!("{} ({})", fmt::f2(row.ipl.read), fmt::f2(paper.4)),
            row.ipa_erases.to_string(),
            row.ipl_erases.to_string(),
            if wins { "yes" } else { "NO" }.to_string(),
        ]);
        json.insert(
            row.name.to_string(),
            serde_json::json!({
                "wa_ipa": row.ipa.write, "wa_ipl": row.ipl.write,
                "ra_ipa": row.ipa.read, "ra_ipl": row.ipl.read,
                "erases_ipa": row.ipa_erases, "erases_ipl": row.ipl_erases,
            }),
        );
    }
    let mut out = ExperimentReport::new("table2_ipl_vs_ipa");
    out.print_table(&t);
    println!("\npaper shape: IPA performs 51-60% fewer reads, 23-62% fewer writes,");
    println!("29-74% fewer erases than IPL across these workloads.");
    for row in &rows {
        println!(
            "  {}: reads {:+.0}%, writes {:+.0}%, erases {:+.0}% vs IPL",
            row.name,
            (row.ipa.read / row.ipl.read - 1.0) * 100.0,
            (row.ipa.write / row.ipl.write - 1.0) * 100.0,
            if row.ipl_erases == 0 {
                0.0
            } else {
                (row.ipa_erases as f64 / row.ipl_erases as f64 - 1.0) * 100.0
            },
        );
    }
    out.set_payload(serde_json::Value::Object(json));
    out.save();
    finish_trace();
}
