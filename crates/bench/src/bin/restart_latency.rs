//! Restart latency — checkpoint-bounded ARIES restart vs the full-scan
//! baseline (DESIGN.md, "Checkpoints & bounded restart").
//!
//! TPC-B runs under a 4-client pool to a crash point, the log is forced
//! (so both arms recover the *same* committed history), the machine
//! crashes, and restart runs either checkpoint-bounded
//! (`Database::recover`) or as the full-log-scan oracle
//! (`Database::recover_unbounded` — the `inf` checkpoint-interval arm,
//! exactly the pre-checkpoint engine). Swept: crash point x checkpoint
//! interval on the simulated clock. Reported per cell: checkpoints
//! taken, analysis records scanned, redo records applied vs skipped, and
//! simulated restart wall-time. Every bounded arm's recovered state must
//! be identical to the oracle's — audited through the full TPC-B balance
//! vector (branches, tellers, accounts), not just conservation sums.
//!
//! The WAL stays far below its reclaim threshold at these run lengths
//! (64 MB capacity, ~hundreds of KB written), so no truncation muddies
//! the baseline: the oracle really rescans the whole history.
//!
//! Acceptance: at the densest interval and deepest crash point the
//! bounded arm applies <= 25% of the oracle's redo records, with a
//! byte-identical balance vector.

use ipa_bench::{
    attach_trace, banner, finish_trace, fmt, init_trace, smoke, ExperimentReport, Table, SEED,
};
use ipa_core::NxM;
use ipa_engine::{LockPolicy, Schedule};
use ipa_obs::Snapshot;
use ipa_workloads::{MultiRunner, SystemConfig, TpcB, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Clients in the pool (WaitDie, round-robin — deterministic across arms).
const CLIENTS: usize = 4;
/// Emulator think time per transaction; at ~0.2 ms/txn the sweep's
/// checkpoint intervals span "every few txns" to "every few hundred".
const CPU_NS_PER_TXN: u64 = 200_000;

/// Checkpoint-interval arms: `0` is the no-checkpoint oracle (restart
/// falls back to a full log scan), the rest sweep density.
const INTERVALS: [(&str, u64); 4] =
    [("inf", 0), ("50ms", 50_000_000), ("10ms", 10_000_000), ("2ms", 2_000_000)];

#[derive(Clone)]
struct Arm {
    balances: Vec<i32>,
    conserved: i64,
    checkpoints: u64,
    analysis_records: u64,
    redo_applied: u64,
    redo_skipped: u64,
    recovery_us: f64,
    wal_head: u64,
    snapshot: serde_json::Value,
}

fn run_arm(interval_ns: u64, crash_point: u64, bounded: bool) -> Arm {
    let mut cfg = SystemConfig::emulator(NxM::tpcb(), 0.20);
    cfg.cpu_ns_per_txn = CPU_NS_PER_TXN;
    cfg.lock_policy = LockPolicy::WaitDie;
    cfg.checkpoint_interval_ns = interval_ns;

    let mut w = if smoke() { TpcB::new(1, 300) } else { TpcB::new(4, 2_000) };
    let mut db = cfg.build_for(&w).expect("emulator database builds");
    attach_trace(&mut db);
    let mut rng = StdRng::seed_from_u64(SEED);
    w.setup(&mut db, &mut rng).expect("TPC-B load");

    let shared = w.into_shared();
    let clients = TpcB::spawn_clients(&shared, CLIENTS, crash_point / CLIENTS as u64, SEED);
    let mut runner = MultiRunner::new(SEED);
    runner.cpu_ns_per_txn = CPU_NS_PER_TXN;
    runner.schedule = Schedule::RoundRobin;
    runner.run(&mut db, clients).expect("pool run to the crash point");

    // Force the log so the two restart flavors recover the *same*
    // committed history — the comparison is about how much work restart
    // does, not about which unforced suffix a crash happens to eat.
    db.force_log();
    let wal_head = db.wal_head().0;
    db.simulate_crash();
    if bounded {
        db.recover().expect("bounded restart");
    } else {
        db.recover_unbounded().expect("full-scan restart");
    }

    let conserved =
        shared.borrow().verify_balances(&mut db).expect("money conserved across restart");
    let balances = shared.borrow().balance_vector(&mut db).expect("balance vector after restart");
    let s = db.stats().clone();
    Arm {
        balances,
        conserved,
        checkpoints: s.checkpoints,
        analysis_records: s.analysis_records,
        redo_applied: s.redo_applied,
        redo_skipped: s.redo_skipped,
        recovery_us: s.recovery_ns as f64 / 1e3,
        wal_head,
        snapshot: Snapshot::capture(&db).to_json(),
    }
}

fn main() {
    init_trace("restart_latency");
    banner(
        "Restart latency — checkpoint-bounded ARIES restart vs full log scan",
        "DESIGN.md 'Checkpoints & bounded restart' (crash point x checkpoint interval)",
    );
    let smoke = smoke();
    let total: u64 = if smoke { 600 } else { 4_000 };
    let crash_points = [total / 4, total / 2, total];

    let mut report = ExperimentReport::new("restart_latency");
    let mut json = Vec::new();
    let mut t = Table::new(&[
        "crash txns",
        "interval",
        "ckpts",
        "analysis",
        "redo applied",
        "redo skipped",
        "restart us",
        "redo vs inf",
        "state",
    ]);
    let mut densest: Option<(f64, Arm)> = None;
    for &crash_point in &crash_points {
        let oracle = run_arm(0, crash_point, false);
        assert!(oracle.redo_applied > 0, "the oracle replays history");
        for &(label, interval_ns) in &INTERVALS {
            let arm = if interval_ns == 0 {
                oracle.clone() // the oracle *is* the `inf` row
            } else {
                run_arm(interval_ns, crash_point, true)
            };
            let state_equal = arm.balances == oracle.balances;
            assert!(state_equal, "restart flavors diverged at {crash_point} txns / {label}");
            assert_eq!(arm.conserved, oracle.conserved, "committed-delta ledger diverged");
            let redo_frac = arm.redo_applied as f64 / oracle.redo_applied as f64;
            t.row(vec![
                crash_point.to_string(),
                label.to_string(),
                arm.checkpoints.to_string(),
                arm.analysis_records.to_string(),
                arm.redo_applied.to_string(),
                arm.redo_skipped.to_string(),
                fmt::f2(arm.recovery_us),
                format!("{:.3}x", redo_frac),
                if state_equal { "==".into() } else { "DIVERGED".into() },
            ]);
            json.push(serde_json::json!({
                "crash_point_txns": crash_point,
                "interval": label,
                "interval_ns": interval_ns,
                "checkpoints": arm.checkpoints,
                "analysis_records": arm.analysis_records,
                "redo_applied": arm.redo_applied,
                "redo_skipped": arm.redo_skipped,
                "restart_us": arm.recovery_us,
                "redo_vs_unbounded": redo_frac,
                "wal_head": arm.wal_head,
                "state_equal": state_equal,
            }));
            let is_densest = interval_ns == INTERVALS.last().unwrap().1 && crash_point == total;
            if is_densest {
                densest = Some((redo_frac, arm));
            }
        }
    }
    report.print_table(&t);

    let (redo_frac, arm) = densest.expect("densest cell present");
    println!(
        "\nacceptance (crash at {total} txns, {} interval): {} checkpoints, \
         {:.3}x the oracle's redo, {} records skipped",
        INTERVALS.last().unwrap().0,
        arm.checkpoints,
        redo_frac,
        arm.redo_skipped,
    );
    assert!(arm.checkpoints > 0, "the densest interval must actually checkpoint");
    assert!(arm.redo_skipped > 0, "bounded restart must prove some records replay-free");
    assert!(
        redo_frac <= 0.25,
        "bounded restart must redo <= 25% of the full-scan baseline ({redo_frac:.3}x)"
    );
    println!("paper shape: restart work tracks the checkpoint interval, not the log length;");
    println!("the full-scan arm rescans the whole retained history at every crash point.");

    report.set_payload(serde_json::json!({
        "clients": CLIENTS,
        "cpu_ns_per_txn": CPU_NS_PER_TXN,
        "total_txns": total,
        "acceptance": {
            "interval": INTERVALS.last().unwrap().0,
            "crash_point_txns": total,
            "checkpoints": arm.checkpoints,
            "redo_skipped": arm.redo_skipped,
            "redo_vs_unbounded": redo_frac,
            "state_equal": true,
        },
        "snapshot": arm.snapshot,
        "cells": json,
    }));
    report.save();
    finish_trace();
}
