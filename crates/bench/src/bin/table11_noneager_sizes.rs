//! Table 11 — TPC-C update-size percentiles under *non-eager* eviction.
//!
//! The update-accumulation effect: with a 10% buffer 80% of updates change
//! ≤ 6 bytes, but with a 90% buffer almost none do — pages absorb many
//! transactions before being flushed.

use ipa_bench::{banner, finish_trace, init_trace, run_workload, scale, ExperimentReport, Table};
use ipa_core::NxM;
use ipa_workloads::{SystemConfig, TpcC};

const THRESHOLDS: [u32; 5] = [3, 6, 10, 30, 40];
// Paper Table 11: percentile reached at each threshold, buffers 10..90%.
const PAPER: [[u32; 5]; 5] = [
    [61, 80, 88, 89, 90],
    [34, 64, 83, 88, 89],
    [1, 5, 14, 74, 76],
    [1, 5, 13, 58, 71],
    [1, 4, 10, 60, 72],
];

fn main() {
    init_trace("table11_noneager_sizes");
    banner(
        "Table 11 — TPC-C update sizes, non-eager eviction",
        "paper Table 11 + Figure 9 (update accumulation with large buffers)",
    );
    let s = scale();
    let buffers = [0.10, 0.20, 0.50, 0.75, 0.90];
    let txns = 8_000 * s;

    let mut cdfs = Vec::new();
    for &buffer in &buffers {
        let mut cfg = SystemConfig::emulator(NxM::disabled(), buffer);
        cfg.eager = false;
        let mut w = TpcC::new(1, 3_000 * s, 300);
        let (_, db) = run_workload(&cfg, &mut w, txns / 5, txns);
        let profile = db.profile(0);
        cdfs.push(THRESHOLDS.iter().map(|&b| profile.body_cdf(b) * 100.0).collect::<Vec<f64>>());
    }

    let mut header = vec!["<= bytes".to_string()];
    for b in buffers {
        header.push(format!("buf {:.0}% (paper)", b * 100.0));
    }
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for (ti, &thr) in THRESHOLDS.iter().enumerate() {
        let mut row = vec![thr.to_string()];
        for (bi, cdf) in cdfs.iter().enumerate() {
            row.push(format!("{:.0}th ({}th)", cdf[ti], PAPER[bi][ti]));
        }
        t.row(row);
    }
    let mut out = ExperimentReport::new("table11_noneager_sizes");
    out.print_table(&t);
    println!("\npaper shape: small buffers keep updates tiny; at 50%+ buffers the mass");
    println!("moves to tens of bytes (accumulation) — hence Table 10's larger M values.");
    out.set_payload(
        serde_json::json!({ "thresholds": THRESHOLDS, "buffers": buffers, "cdfs": cdfs }),
    );
    out.save();
    finish_trace();
}
