//! Table 4 — DB I/O write-amplification reduction.
//!
//! `WriteAmplification = Gross_Written_Data / Net_Changed_Data`; the table
//! reports the reduction factor of `[2×M]` and `[3×M]` over the `[0×0]`
//! baseline for TPC-B (M=4), TPC-C (M=3) and LinkBench (M=125) at 75% and
//! 90% buffers.

use ipa_bench::{
    banner, finish_trace, fmt, init_trace, run_workload, scale, ExperimentReport, Table,
};
use ipa_core::NxM;
use ipa_workloads::{LinkBench, SystemConfig, TpcB, TpcC, Workload};

// Paper Table 4: reduction factors (x times).
const PAPER: [(&str, [f64; 4]); 3] = [
    ("TPC-B (M=4)", [2.03, 2.00, 2.83, 2.77]),
    ("TPC-C (M=3)", [1.95, 1.89, 2.54, 2.47]),
    ("LinkBench (M=125)", [1.71, 1.66, 1.83, 1.75]),
];

fn wa(cfg: &SystemConfig, w: &mut dyn Workload, txns: u64) -> f64 {
    let (report, _) = run_workload(cfg, w, txns / 5, txns);
    report.engine.write_amplification()
}

fn main() {
    init_trace("table4_wa_reduction");
    banner(
        "Table 4 — write amplification reduction (x times)",
        "paper Table 4: [2xM] and [3xM] vs [0x0], buffers 75% and 90%",
    );
    let s = scale();
    type Bench = (&'static str, usize, u64, Box<dyn Fn() -> Box<dyn Workload>>, u16);
    let benches: Vec<Bench> = vec![
        ("TPC-B (M=4)", 4096, 10_000 * s, Box::new(move || Box::new(TpcB::new(4, 4_000 * s))), 4),
        (
            "TPC-C (M=3)",
            4096,
            6_000 * s,
            Box::new(move || Box::new(TpcC::new(1, 3_000 * s, 300))),
            3,
        ),
        (
            "LinkBench (M=125)",
            8192,
            6_000 * s,
            Box::new(move || Box::new(LinkBench::new(3_000 * s, 4))),
            125,
        ),
    ];

    let mut t = Table::new(&["benchmark", "buf", "[2xM] meas (paper)", "[3xM] meas (paper)"]);
    let mut json = Vec::new();
    for (bi, (name, page_size, txns, mk, m)) in benches.iter().enumerate() {
        for (ci, buffer) in [0.75, 0.90].into_iter().enumerate() {
            let run_scheme = |scheme: NxM| {
                let mut cfg = SystemConfig::emulator(scheme, buffer);
                cfg.page_size = *page_size;
                let mut w = mk();
                wa(&cfg, w.as_mut(), *txns)
            };
            let base = run_scheme(NxM::disabled());
            let two = run_scheme(NxM::new(2, *m, 12));
            let three = run_scheme(NxM::new(3, *m, 12));
            let r2 = base / two;
            let r3 = base / three;
            t.row(vec![
                name.to_string(),
                format!("{:.0}%", buffer * 100.0),
                format!("{} ({})", fmt::f2(r2), fmt::f2(PAPER[bi].1[ci])),
                format!("{} ({})", fmt::f2(r3), fmt::f2(PAPER[bi].1[2 + ci])),
            ]);
            json.push(serde_json::json!({
                "benchmark": name, "buffer": buffer,
                "reduction_2xM": r2, "reduction_3xM": r3,
                "wa_baseline": base, "wa_2xM": two, "wa_3xM": three,
            }));
        }
    }
    let mut out = ExperimentReport::new("table4_wa_reduction");
    out.print_table(&t);
    println!("\npaper shape: ~2x reduction with [2xM], up to ~2.8x with [3xM];");
    println!("LinkBench reductions smaller (larger updates), [3xM] > [2xM] everywhere.");
    out.set_payload(serde_json::Value::Array(json));
    out.save();
    finish_trace();
}
