//! Criterion micro-benchmarks for the core mechanisms of the IPA stack:
//! the flash program paths (full page vs delta append), delta-record
//! encode/apply, slotted-page operations with change tracking, the
//! eviction decision, B+-tree operations and buffer fetches with delta
//! reconstruction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use ipa_core::{ChangePair, ChangeTracker, DbPage, DeltaRecord, NxM, PageLayout};
use ipa_engine::{Database, DbConfig};
use ipa_flash::{FlashConfig, FlashDevice, OpOrigin, Ppa};
use ipa_noftl::{IoCtx, IpaMode, Lba, NoFtl, NoFtlConfig};

fn bench_flash_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("flash");
    let page = vec![0x55u8; 4096];
    g.bench_function("program_full_page", |b| {
        b.iter_batched(
            || FlashDevice::new(FlashConfig::small_slc()),
            |mut dev| {
                dev.program(Ppa::new(0, 0, 0), black_box(&page), OpOrigin::Host).unwrap();
                dev
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("program_delta_append", |b| {
        b.iter_batched(
            || {
                let mut dev = FlashDevice::new(FlashConfig::small_slc());
                let mut image = vec![0xFF; 4096];
                image[..2048].fill(0x11);
                dev.program(Ppa::new(0, 0, 0), &image, OpOrigin::Host).unwrap();
                dev
            },
            |mut dev| {
                dev.program_partial(
                    Ppa::new(0, 0, 0),
                    4000,
                    black_box(&[0x13; 46]),
                    OpOrigin::Host,
                )
                .unwrap();
                dev
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("read_page", |b| {
        let mut dev = FlashDevice::new(FlashConfig::small_slc());
        dev.program(Ppa::new(0, 0, 0), &page, OpOrigin::Host).unwrap();
        b.iter(|| dev.read(black_box(Ppa::new(0, 0, 0)), OpOrigin::Host).unwrap())
    });
    g.bench_function("erase_block", |b| {
        b.iter_batched(
            || {
                let mut dev = FlashDevice::new(FlashConfig::small_slc());
                dev.program(Ppa::new(0, 0, 0), &page, OpOrigin::Host).unwrap();
                dev
            },
            |mut dev| {
                dev.erase(0, 0).unwrap();
                dev
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_delta_records(c: &mut Criterion) {
    let mut g = c.benchmark_group("delta");
    let scheme = NxM::tpcc();
    let rec = DeltaRecord::new(
        vec![
            ChangePair { offset: 500, value: 1 },
            ChangePair { offset: 600, value: 2 },
            ChangePair { offset: 700, value: 3 },
        ],
        (0..12).map(|i| ChangePair { offset: 10 + i, value: i as u8 }).collect(),
    );
    g.bench_function("encode_2x3", |b| b.iter(|| black_box(&rec).encode(&scheme).unwrap()));
    let encoded = rec.encode(&scheme).unwrap();
    g.bench_function("decode_2x3", |b| {
        b.iter(|| DeltaRecord::decode(black_box(&encoded), &scheme).unwrap())
    });
    let mut page = vec![0u8; 4096];
    g.bench_function("apply_record", |b| b.iter(|| rec.apply(black_box(&mut page)).unwrap()));
    g.finish();
}

fn bench_page_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("page");
    let layout = PageLayout::new(4096, NxM::tpcc()).unwrap();
    g.bench_function("tracked_small_update", |b| {
        let mut pg = DbPage::format(1, layout);
        let mut t = ChangeTracker::new(*pg.scheme(), 0, false);
        let slot = pg.insert_tuple(&[0u8; 64], &mut t).unwrap();
        let mut v = 0u8;
        b.iter(|| {
            let mut t = ChangeTracker::new(*pg.scheme(), 0, true);
            v = v.wrapping_add(1);
            let mut data = [0u8; 64];
            data[0] = v;
            pg.update_tuple(slot, &data, &mut t).unwrap();
            black_box(t.body_changed())
        })
    });
    g.bench_function("flush_decision_ipa", |b| {
        let pg = DbPage::format(1, layout);
        let mut t = ChangeTracker::new(*pg.scheme(), 0, true);
        t.record_body(200);
        t.record_body(201);
        t.record_meta(10);
        b.iter(|| black_box(t.decide(pg.bytes())))
    });
    g.bench_function("fetch_reconstruct_2_deltas", |b| {
        let mut t = ChangeTracker::new(NxM::tpcc(), 0, false);
        let mut pg = DbPage::format(1, layout);
        pg.insert_tuple(&[9u8; 16], &mut t).unwrap();
        let body = layout.body_start() as u16;
        for i in 0..2 {
            let rec =
                DeltaRecord::new(vec![ChangePair { offset: body + i, value: i as u8 }], vec![]);
            pg.append_delta_record(&rec).unwrap();
        }
        let raw = pg.bytes().to_vec();
        b.iter_batched(
            || DbPage::from_bytes(raw.clone(), layout).unwrap(),
            |mut p| {
                p.apply_deltas().unwrap();
                p
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_noftl(c: &mut Criterion) {
    let mut g = c.benchmark_group("noftl");
    g.sample_size(20);
    g.bench_function("write_page_steady_state_gc", |b| {
        let cfg = NoFtlConfig::builder(FlashConfig::small_slc())
            .blocks_per_chip(32)
            .pages_per_block(32)
            .page_size(1024)
            .single_region(IpaMode::Slc, 0.3)
            .build()
            .unwrap();
        let mut ftl = NoFtl::new(cfg).unwrap();
        let data = vec![0xA5u8; 1024];
        // Fill to steady state.
        let cap = ftl.capacity(ipa_noftl::RegionId(0)).unwrap();
        for lba in 0..cap * 8 / 10 {
            ftl.write_page(ipa_noftl::RegionId(0), Lba(lba), &data, IoCtx::default()).unwrap();
        }
        let mut lba = 0u64;
        b.iter(|| {
            lba = (lba + 13) % (cap * 8 / 10);
            ftl.write_page(ipa_noftl::RegionId(0), Lba(lba), black_box(&data), IoCtx::default())
                .unwrap()
        })
    });
    g.bench_function("write_delta", |b| {
        let mut base = FlashConfig::small_slc();
        base.max_appends = Some(u32::MAX);
        let cfg = NoFtlConfig::builder(base)
            .page_size(1024)
            .single_region(IpaMode::Slc, 0.3)
            .build()
            .unwrap();
        let mut ftl = NoFtl::new(cfg).unwrap();
        let mut data = vec![0xFF; 1024];
        data[..128].fill(0);
        ftl.write_page(ipa_noftl::RegionId(0), Lba(0), &data, IoCtx::default()).unwrap();
        b.iter(|| {
            // Identical re-append is ISPP-legal; avoids exhausting the area.
            ftl.write_delta(
                ipa_noftl::RegionId(0),
                Lba(0),
                512,
                black_box(&[0x0F; 16]),
                IoCtx::default(),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);

    fn small_db(scheme: NxM) -> Database {
        let cfg = NoFtlConfig::builder(FlashConfig::small_slc())
            .blocks_per_chip(64)
            .pages_per_block(16)
            .page_size(1024)
            .single_region(IpaMode::Slc, 0.2)
            .build()
            .unwrap();
        Database::builder(cfg).scheme(scheme).config(DbConfig::eager(64)).open().unwrap()
    }

    g.bench_function("heap_update_commit_ipa", |b| {
        let mut db = small_db(NxM::tpcc());
        let heap = db.create_heap(0);
        let mut tx = db.txn();
        let rid = tx.heap_insert(heap, &[7u8; 32]).unwrap();
        tx.commit().unwrap();
        db.flush_all().unwrap();
        let mut v = 0u8;
        b.iter(|| {
            v = v.wrapping_add(1);
            let mut tx = db.txn();
            let mut t = [7u8; 32];
            t[0] = v;
            tx.heap_update(heap, rid, &t).unwrap();
            tx.commit().unwrap();
            db.flush_page(rid.page).unwrap();
        })
    });
    g.bench_function("btree_insert", |b| {
        let mut db = small_db(NxM::disabled());
        let idx = db.create_index(0).unwrap();
        // The open transaction outlives each closure call, so it rides the
        // park/resume path between iterations.
        let mut id = db.txn().park();
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            // Bound tree size, page allocation and log growth over
            // arbitrarily many criterion iterations: cycle a fixed key
            // space (delete-then-insert) and commit periodically.
            let key = k % 4096;
            let mut tx = db.resume(id).unwrap();
            if k > 4096 {
                tx.index_delete(idx, key).unwrap();
            }
            tx.index_insert(idx, black_box(key), k).unwrap();
            if k.is_multiple_of(1024) {
                tx.commit().unwrap();
                id = db.txn().park();
            } else {
                id = tx.park();
            }
        })
    });
    g.bench_function("btree_lookup", |b| {
        let mut db = small_db(NxM::disabled());
        let idx = db.create_index(0).unwrap();
        let mut tx = db.txn();
        for k in 0..5_000u64 {
            tx.index_insert(idx, k, k).unwrap();
        }
        tx.commit().unwrap();
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 997) % 5_000;
            db.index_lookup(idx, black_box(k)).unwrap()
        })
    });
    g.bench_function("buffer_hit_fetch", |b| {
        let mut db = small_db(NxM::tpcc());
        let heap = db.create_heap(0);
        let mut tx = db.txn();
        let rid = tx.heap_insert(heap, &[1u8; 16]).unwrap();
        tx.commit().unwrap();
        b.iter(|| db.heap_read_unlocked(black_box(rid)).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_flash_ops,
    bench_delta_records,
    bench_page_ops,
    bench_noftl,
    bench_engine
);
criterion_main!(benches);
