//! Fixture: the JSONL writer names every EventKind variant it handles;
//! `Orphan` is deliberately absent (seeded L010).

pub fn label(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::HostRead => "host_read",
        EventKind::HostProgram => "host_program",
        EventKind::SchemeChange => "scheme_change",
    }
}
