//! Fixture: the snapshot rendering. It exports `WearStats` but renders
//! only `wear_resets` — the missing `wear_skips` is the seeded L010.

pub fn wear_json(w: &WearStats) -> u64 {
    w.wear_resets
}
