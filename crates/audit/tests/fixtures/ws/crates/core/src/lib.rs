//! Fixture: a clean bottom-layer crate — the false-positive guards.
//! Nothing in this file may produce a finding.

/// Doc text may say `.unwrap()`, `dev.peek(0)` or `PageData` freely,
/// and so may the string literal below.
pub fn describe() -> &'static str {
    "panic!(PageData.unwrap())"
}

pub fn main_with_arg(x: &Caller) -> u8 {
    x.main(7)
}

fn main() {}
