//! Fixture: device event kinds for the L010 parity check. `Orphan` is
//! never named by the obs jsonl fixture — the seeded violation.

pub enum EventKind {
    HostRead,
    HostProgram,
    Orphan,
    // Handled adaptive-IPA event: the parity lint must not flag it.
    SchemeChange,
}
