//! Fixture: the flash layer itself. Raw cell access is its job, so L001
//! never fires here; L005 still applies (flash is a measured crate).

pub struct PageData;

impl PageData {
    pub fn main(&mut self) -> u8 {
        0
    }
}

#[derive(Default)]
pub struct EraseStats {
    pub erases: u64,
}

#[must_use]
pub struct WearCounters;

struct PrivateStats;
