//! Fixture: the flash layer itself. Raw cell access is its job, so L001
//! never fires here; L005 still applies (flash is a measured crate).

pub struct PageData;

impl PageData {
    pub fn main(&mut self) -> u8 {
        0
    }
}

#[derive(Default)]
pub struct EraseStats {
    pub erases: u64,
}

#[must_use]
pub struct WearCounters;

struct PrivateStats;

// L010 seeds: WearStats is exported to the snapshot fixture, so its
// `wear_skips` bump (absent from the rendering) is a violation, while
// `wear_resets` (rendered) and the never-exported ScratchStats are fine.
#[must_use]
pub struct WearStats {
    pub wear_resets: u64,
    pub wear_skips: u64,
}

struct ScratchStats {
    scratch_hits: u64,
}

pub fn tally(w: &mut WearStats, s: &mut ScratchStats) {
    w.wear_resets += 1;
    w.wear_skips += 1;
    s.scratch_hits += 1;
}
