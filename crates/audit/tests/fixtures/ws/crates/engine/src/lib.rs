//! Fixture: engine-layer violations.

use ipa_flash::Chip;

pub fn scribble(page: &mut PageData) {
    page.main()[0] = 0;
    panic!("fixture");
}

pub fn read_lsn(buf: &[u8]) -> u64 {
    u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"))
}

// audit:allow(L001, reason = "fixture: this pragma matches nothing")
pub fn clean() {}

pub fn engine_owns_ids() -> TxId {
    TxId(1)
}
