//! Fixture: engine-layer violations.

use ipa_flash::Chip;

pub fn scribble(page: &mut PageData) {
    page.main()[0] = 0;
    panic!("fixture");
}

pub fn read_lsn(buf: &[u8]) -> u64 {
    u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"))
}

// audit:allow(L001, reason = "fixture: this pragma matches nothing")
pub fn clean() {}

pub fn engine_owns_ids() -> TxId {
    TxId(1)
}

// L009 support: a fallible engine API the noftl fixture swallows.
pub fn flush_meta() -> Result<(), EngineError> {
    Ok(())
}

// L011 seeds: a side-door acquire outside Database/LockManager (Helper)
// and a re-entrant call on the acquire path (admit); the Database method
// is the front-door FP guard.
pub struct LockManager;

impl LockManager {
    pub fn lock(&mut self, tx: u64, key: u64) {
        self.admit(tx, key);
    }

    fn admit(&mut self, tx: u64, key: u64) {
        self.lock(tx, key);
    }
}

pub struct Helper;

impl Helper {
    pub fn side_door(&self, locks: &mut LockManager) {
        locks.lock(1, 2);
    }
}

pub struct Database {
    locks: LockManager,
}

impl Database {
    pub fn acquire(&mut self) {
        self.locks.lock(1, 2);
    }
}
