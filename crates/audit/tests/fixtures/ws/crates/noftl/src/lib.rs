//! Fixture: noftl-layer violations. Mentioning `dev.peek(0)` or
//! `PageData` in doc comments must not trip anything.

use ipa_engine::Db;

pub fn diag(dev: &mut Dev) -> u8 {
    dev.peek(3)
}

pub fn fire_and_forget(dev: &mut Dev) {
    dev.submit_write(9);
}

pub fn write_sync(dev: &mut Dev) {
    dev.submit_write(7);
    dev.drain_completions();
}

pub fn submit_probe(dev: &mut Dev) {
    dev.submit_read(1);
}

pub fn lookup(map: &std::collections::HashMap<u32, u32>) -> u32 {
    // audit:allow(L002, reason = "fixture: demonstrate single suppression")
    *map.get(&1).unwrap() + *map.get(&2).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}

// L006 seeds (appended so the pragma line numbers above stay stable).
// Mentioning `open_span` in a comment must not trip anything either.
pub fn leaky_episode(dev: &mut Dev) {
    let span = dev.open_span(3);
    dev.submit_write(5);
    dev.drain_completions();
    let _ = span;
}

pub fn traced_episode(dev: &mut Dev) {
    let span = dev.open_span(3);
    dev.submit_write(5);
    dev.drain_completions();
    dev.close_span(span);
}

pub fn begin_episode(dev: &mut Dev) -> u64 {
    dev.open_span(1)
}

pub fn reparent(dev: &mut Dev, parent: SpanId) {
    dev.open_span_under(1, parent);
}

// L007 seeds: transaction discipline. Mentioning `TxId(7)` or `db.begin()`
// in a comment must not trip anything.
pub fn forge_tx(db: &mut Db) {
    let ghost = TxId(99);
    let tx = db.begin();
    db.commit(tx);
    db.abort(ghost);
}

pub fn guarded(db: &mut Db) {
    let tx = db.txn();
    tx.commit();
}

pub fn hand_off(id: TxId) -> TxId {
    id
}

pub fn begin(x: u8) -> u8 {
    begin_with(x)
}

pub fn begin_with(x: u8) -> u8 {
    x
}
