//! Fixture: noftl-layer violations. Mentioning `dev.peek(0)` or
//! `PageData` in doc comments must not trip anything.

use ipa_engine::Db;

pub fn diag(dev: &mut Dev) -> u8 {
    dev.peek(3)
}

pub fn fire_and_forget(dev: &mut Dev) {
    dev.submit_write(9);
}

pub fn write_sync(dev: &mut Dev) {
    dev.submit_write(7);
    dev.drain_completions();
}

pub fn submit_probe(dev: &mut Dev) {
    dev.submit_read(1);
}

pub fn lookup(map: &std::collections::HashMap<u32, u32>) -> u32 {
    // audit:allow(L002, reason = "fixture: demonstrate single suppression")
    *map.get(&1).unwrap() + *map.get(&2).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}

// L006 seeds (appended so the pragma line numbers above stay stable).
// Mentioning `open_span` in a comment must not trip anything either.
pub fn leaky_episode(dev: &mut Dev) {
    let span = dev.open_span(3);
    dev.submit_write(5);
    dev.drain_completions();
    let _ = span;
}

pub fn traced_episode(dev: &mut Dev) {
    let span = dev.open_span(3);
    dev.submit_write(5);
    dev.drain_completions();
    dev.close_span(span);
}

pub fn begin_episode(dev: &mut Dev) -> u64 {
    dev.open_span(1)
}

pub fn reparent(dev: &mut Dev, parent: SpanId) {
    dev.open_span_under(1, parent);
}

// L007 seeds: transaction discipline. Mentioning `TxId(7)` or `db.begin()`
// in a comment must not trip anything.
pub fn forge_tx(db: &mut Db) {
    let ghost = TxId(99);
    let tx = db.begin();
    db.commit(tx);
    db.abort(ghost);
}

pub fn guarded(db: &mut Db) {
    let tx = db.txn();
    tx.commit();
}

pub fn hand_off(id: TxId) -> TxId {
    id
}

pub fn begin(x: u8) -> u8 {
    begin_with(x)
}

pub fn begin_with(x: u8) -> u8 {
    x
}

// L008 seeds: hash-order iteration and wall-clock reads. Keyed access,
// same-statement reductions and BTreeMap iteration are the FP guards.
pub fn unstable_scan(hmap: &std::collections::HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (_k, v) in hmap.iter() {
        out.push(*v);
    }
    out
}

pub fn unstable_borrow(hmap: &std::collections::HashMap<u32, u32>) -> u32 {
    let mut last = 0;
    for (_k, v) in &hmap {
        last = *v;
    }
    last
}

pub fn wall_clock() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn stable_count(hmap: &std::collections::HashMap<u32, u32>) -> usize {
    hmap.iter().count()
}

pub fn ordered_scan(bmap: &std::collections::BTreeMap<u32, u32>) -> Vec<u32> {
    bmap.values().copied().collect()
}

pub fn deliberate_scan(hmap: &std::collections::HashMap<u32, u32>) -> u32 {
    let mut acc = 0;
    // audit:allow(L008, reason = "fixture: xor-reduction is order-insensitive")
    for (_k, v) in &hmap {
        acc ^= *v;
    }
    acc
}

// L009 seeds: swallowed Results on a call the graph resolves to the
// fallible engine fixture `flush_meta`. Infallible drops, `?` statements,
// let-bound conversions and non-empty arms are the FP guards.
pub fn swallow_flush() {
    let _ = flush_meta();
}

pub fn appease_must_use() {
    flush_meta().ok();
}

pub fn notice_and_ignore() {
    if flush_meta().is_err() {}
}

pub fn cheap_hint() -> u8 {
    7
}

pub fn infallible_drop() {
    let _ = cheap_hint();
}

pub fn propagate_only_value() -> Result<(), EngineError> {
    let _ = flush_meta()?;
    Ok(())
}

pub fn convert_then_use() {
    let kept = flush_meta().ok();
    let _ = kept;
}

pub fn handle_errors() {
    if flush_meta().is_err() {
        cheap_hint();
    }
}

// L011 seed: a foreign crate reaching the engine's lock manager.
pub fn sneak_lock(eng: &mut Engine) {
    eng.locks.lock(1, 2);
}

// CFG-aware L004 seeds: an early `?` or a one-armed completion between
// submit and complete leaks even though `complete` is textually present;
// both-arm completion and `?` on the submit statement itself are fine.
pub fn risky_write(dev: &mut Dev) -> Result<(), FlashError> {
    let id = dev.submit_write(1);
    dev.read_oob()?;
    dev.complete(id);
    Ok(())
}

pub fn sometimes_completes(dev: &mut Dev, flag: bool) {
    let id = dev.submit_write(2);
    if flag {
        dev.complete(id);
    }
}

pub fn branch_complete(dev: &mut Dev, flag: bool) {
    let id = dev.submit_write(3);
    if flag {
        dev.complete(id);
    } else {
        dev.drain();
    }
}

pub fn checked_write(dev: &mut Dev) -> Result<(), FlashError> {
    let id = dev.submit_write(4)?;
    dev.complete(id);
    Ok(())
}

// CFG-aware L006 seed: a span closed on only one branch arm leaks on the
// other; closing after a loop on the single exit path is fine.
pub fn flaky_span(dev: &mut Dev, flag: bool) {
    let span = dev.open_span(7);
    if flag {
        dev.close_span(span);
    }
}

pub fn looped_span(dev: &mut Dev) {
    let span = dev.open_span(2);
    for i in 0..3 {
        dev.submit_write(i);
        dev.drain();
    }
    dev.close_span(span);
}
