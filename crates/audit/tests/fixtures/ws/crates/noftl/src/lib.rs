//! Fixture: noftl-layer violations. Mentioning `dev.peek(0)` or
//! `PageData` in doc comments must not trip anything.

use ipa_engine::Db;

pub fn diag(dev: &mut Dev) -> u8 {
    dev.peek(3)
}

pub fn fire_and_forget(dev: &mut Dev) {
    dev.submit_write(9);
}

pub fn write_sync(dev: &mut Dev) {
    dev.submit_write(7);
    dev.drain_completions();
}

pub fn submit_probe(dev: &mut Dev) {
    dev.submit_read(1);
}

pub fn lookup(map: &std::collections::HashMap<u32, u32>) -> u32 {
    // audit:allow(L002, reason = "fixture: demonstrate single suppression")
    *map.get(&1).unwrap() + *map.get(&2).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
