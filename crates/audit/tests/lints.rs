//! End-to-end lint tests: a fixture mini-workspace seeded with one of
//! every violation (`tests/fixtures/ws`), false-positive guards, pragma
//! semantics, and a self-check that the live repository audits clean.
//!
//! The fixture sources are never compiled — they sit under a `fixtures/`
//! path segment precisely so the auditor itself would classify them as
//! test code if they ever leaked into a real workspace scan; here they are
//! loaded explicitly with the fixture directory as the workspace root, so
//! their relative paths (`crates/noftl/src/lib.rs`, ...) look live.

use std::path::{Path, PathBuf};

use ipa_audit::findings::{Report, Severity};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn fixture_report() -> Report {
    ipa_audit::run(&fixture_root()).expect("fixture workspace loads")
}

fn has(report: &Report, code: &str, file: &str, line: u32) -> bool {
    report.findings.iter().any(|f| f.code == code && f.file == file && f.line == line)
}

fn count(report: &Report, code: &str) -> usize {
    report.findings.iter().filter(|f| f.code == code).count()
}

#[test]
fn seeded_violations_are_all_reported() {
    let r = fixture_report();
    // L001 — raw cell access outside ipa-flash.
    assert!(has(&r, "L001", "crates/noftl/src/lib.rs", 7), ".peek() backdoor");
    assert!(has(&r, "L001", "crates/engine/src/lib.rs", 3), "use ipa_flash::Chip");
    assert!(has(&r, "L001", "crates/engine/src/lib.rs", 5), "PageData in signature");
    assert!(has(&r, "L001", "crates/engine/src/lib.rs", 6), ".main() raw view");
    // L002 — panics in hot crates.
    assert!(has(&r, "L002", "crates/engine/src/lib.rs", 7), "panic! macro");
    assert!(has(&r, "L002", "crates/engine/src/lib.rs", 11), ".expect() call");
    // L003 — layering, both manifest and source sides.
    assert!(has(&r, "L003", "crates/noftl/Cargo.toml", 9), "noftl -> ipa-engine dep");
    assert!(has(&r, "L003", "crates/noftl/src/lib.rs", 4), "use ipa_engine in noftl");
    assert!(has(&r, "L003", "crates/engine/src/lib.rs", 3), "use ipa_flash in engine");
    // L004 — submit without a completion path.
    assert!(has(&r, "L004", "crates/noftl/src/lib.rs", 11), "fire_and_forget leaks");
    // L005 — public measurement type without #[must_use].
    assert!(has(&r, "L005", "crates/flash/src/lib.rs", 13), "EraseStats lacks must_use");
    // L006 — span opened without a close path.
    assert!(has(&r, "L006", "crates/noftl/src/lib.rs", 40), "leaky_episode leaks a span");
    // L007 — transaction discipline outside ipa-engine.
    assert!(has(&r, "L007", "crates/noftl/src/lib.rs", 64), "raw TxId construction");
    assert!(has(&r, "L007", "crates/noftl/src/lib.rs", 65), "deprecated .begin() shim");
    assert!(has(&r, "L007", "crates/noftl/src/lib.rs", 66), "id-threading .commit(tx)");
    assert!(has(&r, "L007", "crates/noftl/src/lib.rs", 67), "id-threading .abort(ghost)");
    // L008 — hash-order iteration and ambient time in the core.
    assert!(has(&r, "L008", "crates/noftl/src/lib.rs", 91), "hmap.iter() in a for header");
    assert!(has(&r, "L008", "crates/noftl/src/lib.rs", 99), "for .. in &hmap");
    assert!(has(&r, "L008", "crates/noftl/src/lib.rs", 106), "Instant::now");
    // L009 — swallowed Results, resolved fallible through the call graph.
    assert!(has(&r, "L009", "crates/noftl/src/lib.rs", 131), "let _ = flush_meta()");
    assert!(has(&r, "L009", "crates/noftl/src/lib.rs", 135), "flush_meta().ok();");
    assert!(has(&r, "L009", "crates/noftl/src/lib.rs", 139), "empty is_err arm");
    // L010 — obs parity, both directions.
    assert!(has(&r, "L010", "crates/flash/src/obs.rs", 7), "EventKind::Orphan unhandled");
    assert!(has(&r, "L010", "crates/flash/src/lib.rs", 37), "wear_skips bump unexported");
    // L011 — lock discipline via the call graph.
    assert!(has(&r, "L011", "crates/noftl/src/lib.rs", 168), "foreign-crate acquire");
    assert!(has(&r, "L011", "crates/engine/src/lib.rs", 45), "side-door acquire");
    assert!(has(&r, "L011", "crates/engine/src/lib.rs", 37), "re-entrant acquire path");
}

#[test]
fn cfg_aware_pairing_catches_textually_present_completions() {
    let r = fixture_report();
    // The completion/close call exists in all three, but the CFG shows it
    // is not reached on every path.
    assert!(has(&r, "L004", "crates/noftl/src/lib.rs", 175), "early ? leaks the submit");
    let leak =
        r.findings.iter().find(|f| f.code == "L004" && f.line == 175).expect("risky_write finding");
    assert!(leak.message.contains("line 176"), "leak names the exit line: {}", leak.message);
    assert!(has(&r, "L004", "crates/noftl/src/lib.rs", 182), "one-armed completion");
    assert!(has(&r, "L006", "crates/noftl/src/lib.rs", 206), "one-armed span close");
    // FP guards: both-arm completion, ? on the submit statement itself,
    // and a close after a loop are all Closed.
    assert!(!has(&r, "L004", "crates/noftl/src/lib.rs", 189), "both arms complete");
    assert!(!has(&r, "L004", "crates/noftl/src/lib.rs", 198), "? on the submit is exempt");
    assert!(!has(&r, "L006", "crates/noftl/src/lib.rs", 213), "close after loop");
}

#[test]
fn false_positive_guards_hold() {
    let r = fixture_report();
    // The clean core crate fires nothing: doc comments and string
    // literals naming unwrap/peek/PageData/panic! are not tokens, a
    // `fn main()` definition and an `x.main(7)` call are not the
    // zero-argument `.main()` raw view.
    assert!(
        r.findings.iter().all(|f| !f.file.starts_with("crates/core/")),
        "core fixture must stay clean, got: {:?}",
        r.findings.iter().filter(|f| f.file.starts_with("crates/core/")).collect::<Vec<_>>()
    );
    // PageData/.main() inside the flash crate are its own business.
    assert_eq!(count(&r, "L001"), 4, "L001: exactly the four seeded sites");
    // Paired submit+drain and submit_*-named producers are exempt (L004);
    // unwrap under #[cfg(test)] is exempt (L002); ipa-flash dep and
    // dev-dependencies are allowed (L003); #[must_use]'d and private
    // measurement types are exempt (L005).
    assert_eq!(count(&r, "L002"), 3, "L002: panic!, .expect, one unsuppressed .unwrap");
    assert_eq!(count(&r, "L003"), 3, "L003: one manifest + two source edges");
    assert_eq!(count(&r, "L004"), 3, "L004: fire_and_forget + two CFG leaks");
    assert_eq!(count(&r, "L005"), 1, "L005: only EraseStats");
    // Paired open+close, begin_*-named producers, and SpanId-in-signature
    // handoffs are exempt (L006).
    assert_eq!(count(&r, "L006"), 2, "L006: leaky_episode + flaky_span");
    // The guard's zero-argument tx.commit(), TxId in type position, plain
    // `begin`-named functions, and TxId construction inside ipa-engine are
    // all exempt (L007).
    assert_eq!(count(&r, "L007"), 4, "L007: exactly the four seeded shims");
    // BTreeMap scans, .iter().count()/sum-style reductions, and the
    // pragma'd xor fold are exempt (L008).
    assert_eq!(count(&r, "L008"), 3, "L008: two hash scans + one wall clock");
    // Infallible callees, `let _ = f()?`, a kept `.ok()` value, and a
    // non-empty is_err arm are exempt (L009).
    assert_eq!(count(&r, "L009"), 3, "L009: exactly the three swallow shapes");
    // Handled variants and snapshot-exported counters are exempt; private
    // counter structs are out of scope (L010).
    assert_eq!(count(&r, "L010"), 2, "L010: orphan event + unexported counter");
    // Database methods own the lock manager legitimately (L011).
    assert_eq!(count(&r, "L011"), 3, "L011: foreign, side-door, re-entrant");
    assert_eq!(count(&r, "L000"), 1, "L000: only the unused engine pragma");
    assert_eq!(r.errors(), 31);
    assert_eq!(r.warnings(), 1);
    assert!(!r.clean(false));
}

#[test]
fn pragma_suppresses_exactly_one_finding() {
    let r = fixture_report();
    // Line 25 of the noftl fixture holds two .unwrap() calls under one
    // audit:allow(L002) pragma: one is suppressed, one stays live.  The
    // deliberate_scan fixture adds a pragma'd L008 hash scan at line 121.
    assert_eq!(r.suppressed.len(), 2);
    let l002 = r
        .suppressed
        .iter()
        .find(|s| s.finding.code == "L002")
        .expect("the unwrap suppression survives");
    assert_eq!(l002.finding.file, "crates/noftl/src/lib.rs");
    assert_eq!(l002.finding.line, 25);
    assert!(l002.reason.contains("single suppression"), "reason is carried: {}", l002.reason);
    assert!(has(&r, "L002", "crates/noftl/src/lib.rs", 25), "second unwrap stays live");
    let l008 = r
        .suppressed
        .iter()
        .find(|s| s.finding.code == "L008")
        .expect("the hash-scan suppression survives");
    assert_eq!(l008.finding.file, "crates/noftl/src/lib.rs");
    assert_eq!(l008.finding.line, 121);
    assert!(l008.reason.contains("order-insensitive"), "reason is carried: {}", l008.reason);
    assert!(!has(&r, "L008", "crates/noftl/src/lib.rs", 121), "pragma'd scan stays quiet");
}

#[test]
fn unused_pragma_becomes_l000_warning() {
    let r = fixture_report();
    let l000 = r
        .findings
        .iter()
        .find(|f| f.code == "L000")
        .expect("the engine fixture's dangling pragma is reported");
    assert_eq!(l000.file, "crates/engine/src/lib.rs");
    assert_eq!(l000.line, 14);
    assert_eq!(l000.severity, Severity::Warning);
    assert!(l000.message.contains("suppresses nothing"));
}

#[test]
fn json_report_reflects_the_fixture() {
    let r = fixture_report();
    let json = r.to_json(true);
    assert!(json.contains("\"experiment\": \"ipa-audit\""));
    assert!(json.contains("\"errors\": 31"));
    assert!(json.contains("\"warnings\": 1"));
    assert!(json.contains("\"clean\": false"));
    assert!(json.contains("\"lint\": \"L004\""));
    assert!(json.contains("\"lint\": \"L006\""));
    assert!(json.contains("\"lint\": \"L011\""));
    assert!(json.contains("single suppression"));
}

#[test]
fn sarif_report_reflects_the_fixture() {
    let r = fixture_report();
    let sarif = r.to_sarif();
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"id\": \"L008\""), "rule catalog covers new lints");
    assert!(sarif.contains("\"id\": \"L011\""));
    assert!(sarif.contains("crates/flash/src/obs.rs"), "locations use workspace-relative URIs");
    // Every error finding becomes a result; suppressed ones do not.
    assert_eq!(sarif.matches("\"ruleId\"").count(), r.findings.len());
}

#[test]
fn reports_are_byte_stable_across_runs() {
    // Deterministic finding order is a hard requirement for the CI
    // double-run assert; pin it at the library level too.
    let a = fixture_report();
    let b = fixture_report();
    assert_eq!(a.to_json(true), b.to_json(true));
    assert_eq!(a.to_sarif(), b.to_sarif());
}

#[test]
fn live_workspace_audits_clean() {
    // The real repository two levels up must pass its own gate — the same
    // invariant CI enforces with `ipa-audit check --deny-warnings`.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let r = ipa_audit::run(&root).expect("live workspace loads");
    assert!(r.files_scanned >= 80, "workspace walk found {} files", r.files_scanned);
    let rendered: Vec<String> = r.findings.iter().map(|f| f.render()).collect();
    assert!(r.clean(true), "live workspace has findings:\n{}", rendered.join("\n"));
    // Every suppression in the live tree must carry a reason (the pragma
    // grammar requires it; this pins it end to end).
    assert!(r.suppressed.iter().all(|s| !s.reason.is_empty()));
}
