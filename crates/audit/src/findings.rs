//! Findings, the audit report, and its JSON serialization.
//!
//! The report follows the repo's `bench-results` convention (one
//! self-describing JSON document per run, written next to the benchmark
//! reports) but is hand-serialized — the auditor takes no dependencies,
//! not even `serde`.

use std::fmt::Write as _;

/// How severe a finding is for gating purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the audit unconditionally.
    Error,
    /// Fails the audit only under `--deny-warnings` (pragma hygiene).
    Warning,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint code (`L000` ... `L007`).
    pub code: &'static str,
    /// Gating severity.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// The conventional `file:line: [code] message` rendering.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.code, self.message)
    }
}

/// A finding that was suppressed by an `audit:allow` pragma.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The suppressed finding.
    pub finding: Finding,
    /// The pragma's recorded justification.
    pub reason: String,
}

/// Full result of an audit run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Files scanned.
    pub files_scanned: usize,
    /// Live findings, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Findings suppressed by pragmas, with their reasons.
    pub suppressed: Vec<Suppressed>,
    /// Per-lint catalog entries `(code, name, finding count)`.
    pub lints: Vec<(&'static str, &'static str, usize)>,
}

impl Report {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warning).count()
    }

    /// Whether the audit gate passes.
    pub fn clean(&self, deny_warnings: bool) -> bool {
        self.errors() == 0 && (!deny_warnings || self.warnings() == 0)
    }

    /// Serialize the report as a JSON document (bench-results style).
    pub fn to_json(&self, deny_warnings: bool) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"experiment\": \"ipa-audit\",\n");
        s.push_str("  \"schema\": 1,\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"errors\": {},", self.errors());
        let _ = writeln!(s, "  \"warnings\": {},", self.warnings());
        let _ = writeln!(s, "  \"clean\": {},", self.clean(deny_warnings));
        s.push_str("  \"lints\": [\n");
        for (i, (code, name, count)) in self.lints.iter().enumerate() {
            let comma = if i + 1 == self.lints.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"code\": {}, \"name\": {}, \"findings\": {}}}{}",
                json_str(code),
                json_str(name),
                count,
                comma
            );
        }
        s.push_str("  ],\n");
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 == self.findings.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"lint\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{}",
                json_str(f.code),
                json_str(match f.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                }),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                comma
            );
        }
        s.push_str("  ],\n");
        s.push_str("  \"suppressed\": [\n");
        for (i, sup) in self.suppressed.iter().enumerate() {
            let comma = if i + 1 == self.suppressed.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}{}",
                json_str(sup.finding.code),
                json_str(&sup.finding.file),
                sup.finding.line,
                json_str(&sup.reason),
                comma
            );
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Serialize the report as a SARIF 2.1.0 document for code-scanning
    /// upload. Deterministic: findings are already sorted by
    /// (file, line, code), and rules render in registry order.
    pub fn to_sarif(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
        s.push_str("  \"version\": \"2.1.0\",\n");
        s.push_str("  \"runs\": [\n    {\n");
        s.push_str("      \"tool\": {\n        \"driver\": {\n");
        s.push_str("          \"name\": \"ipa-audit\",\n");
        s.push_str("          \"informationUri\": \"https://example.invalid/ipa-audit\",\n");
        s.push_str("          \"rules\": [\n");
        for (i, (code, name, _)) in self.lints.iter().enumerate() {
            let comma = if i + 1 == self.lints.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "            {{\"id\": {}, \"name\": {}}}{}",
                json_str(code),
                json_str(name),
                comma
            );
        }
        s.push_str("          ]\n        }\n      },\n");
        s.push_str("      \"results\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 == self.findings.len() { "" } else { "," };
            let level = match f.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let _ = writeln!(
                s,
                "        {{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}, \
                 \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
                 {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}{}",
                json_str(f.code),
                json_str(level),
                json_str(&f.message),
                json_str(&f.file),
                f.line,
                comma
            );
        }
        s.push_str("      ]\n    }\n  ]\n}\n");
        s
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_special_chars() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let mut r = Report { files_scanned: 2, ..Default::default() };
        r.lints.push(("L001", "raw-cell-access", 1));
        r.findings.push(Finding {
            code: "L001",
            severity: Severity::Error,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            message: "say \"no\"".into(),
        });
        let j = r.to_json(true);
        assert!(j.contains("\"experiment\": \"ipa-audit\""));
        assert!(j.contains("\\\"no\\\""));
        assert!(j.contains("\"clean\": false"));
        // Balanced braces/brackets.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn sarif_names_rule_file_and_line() {
        let mut r = Report::default();
        r.lints.push(("L008", "determinism", 1));
        r.findings.push(Finding {
            code: "L008",
            severity: Severity::Error,
            file: "crates/engine/src/lock.rs".into(),
            line: 7,
            message: "hash order".into(),
        });
        let s = r.to_sarif();
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"L008\""));
        assert!(s.contains("\"uri\": \"crates/engine/src/lock.rs\""));
        assert!(s.contains("\"startLine\": 7"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn clean_depends_on_deny_warnings() {
        let mut r = Report::default();
        r.findings.push(Finding {
            code: "L000",
            severity: Severity::Warning,
            file: "f".into(),
            line: 1,
            message: "unused pragma".into(),
        });
        assert!(r.clean(false));
        assert!(!r.clean(true));
    }
}
