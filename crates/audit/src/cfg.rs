//! Per-function CFG skeleton: statements, branches and loops as a tree,
//! plus the open/close path evaluation behind the CFG-aware pairing
//! lints (L004 queue pairing, L006 span pairing).
//!
//! This is not a full control-flow graph — expression-level control flow
//! (`let x = if c { a } else { b };`, closure bodies) stays folded into
//! its statement. What the tree does model is exactly what the pairing
//! lints need: *statement-level* sequencing, `if`/`else if`/`else` and
//! `match` arms, and loop bodies. Over that shape, [`outcome_after`]
//! answers: starting **after** the statement that opened a resource
//! (span, queued command), does every path reach a close before the
//! function can exit?
//!
//! Exit edges are `return` statements and the `?` operator. The opening
//! statement itself is outside the window (so `let id = submit(..)?;` is
//! not a leak — the open failed, there is nothing to close), and a
//! statement that contains the close counts as closing even when it also
//! carries a `?` (the usual `close_span(id)?;` tail shape).

use crate::lexer::{Tok, Token};
use crate::source::match_brace;

/// One node of the statement tree.
#[derive(Debug, Clone)]
pub enum Node {
    /// A flat statement (or tail expression): half-open token range.
    Stmt {
        /// Covered token range.
        range: (usize, usize),
        /// 1-indexed line of the statement start.
        line: u32,
    },
    /// `if`/`else if`/`else` chain or a `match`: one node list per arm.
    Branch {
        /// Covered token range (header and all arms).
        range: (usize, usize),
        /// Arm bodies. An `if` without `else` gets an implicit empty arm.
        arms: Vec<Vec<Node>>,
    },
    /// `loop` / `while` / `for` body (may run zero times).
    Loop {
        /// Covered token range.
        range: (usize, usize),
        /// Body nodes.
        body: Vec<Node>,
    },
}

impl Node {
    fn range(&self) -> (usize, usize) {
        match self {
            Node::Stmt { range, .. } | Node::Branch { range, .. } | Node::Loop { range, .. } => {
                *range
            }
        }
    }

    fn contains(&self, tok: usize) -> bool {
        let (a, b) = self.range();
        a <= tok && tok < b
    }
}

/// Where the paths after an open lead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every path reaches a close.
    Closed,
    /// No path closes (falls off the end of the window).
    Open,
    /// Some path exits the function (`return` / `?`) before any close;
    /// carries the line of the escaping statement.
    Leak(u32),
    /// A close exists but only on some paths (inside one branch arm or a
    /// zero-iteration loop).
    Partial,
}

/// Build the statement tree for a function body. `open` is the index of
/// the body `{`; the tree covers the tokens inside the matching braces.
pub fn build(t: &[Token], open: usize, close: usize) -> Vec<Node> {
    parse_block(t, open + 1, close.saturating_sub(1))
}

/// Parse the statements of `t[start..end)` (the inside of a block).
fn parse_block(t: &[Token], start: usize, end: usize) -> Vec<Node> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        match &t[i].tok {
            Tok::Punct(';') => i += 1,
            Tok::Ident(kw) if kw == "if" || kw == "match" => {
                let (node, next) = parse_branch(t, i, end, kw == "match");
                out.push(node);
                i = next;
            }
            Tok::Ident(kw) if kw == "loop" || kw == "while" || kw == "for" => {
                let Some(open) = find_block_open(t, i + 1, end) else {
                    i = end;
                    continue;
                };
                let close = match_brace(t, open).min(end + 1);
                out.push(Node::Loop {
                    range: (i, close),
                    body: parse_block(t, open + 1, close.saturating_sub(1)),
                });
                i = close;
            }
            Tok::Punct('{') => {
                // Bare block: model as a single-arm branch (always taken).
                let close = match_brace(t, i).min(end + 1);
                out.push(Node::Branch {
                    range: (i, close),
                    arms: vec![parse_block(t, i + 1, close.saturating_sub(1))],
                });
                i = close;
            }
            _ => {
                let (node, next) = parse_stmt(t, i, end);
                out.push(node);
                i = next;
            }
        }
    }
    out
}

/// A flat statement: everything to the `;` at brace/paren/bracket depth 0
/// (or the end of the block — a tail expression).
fn parse_stmt(t: &[Token], start: usize, end: usize) -> (Node, usize) {
    let mut depth = 0i32;
    let mut i = start;
    while i < end {
        match &t[i].tok {
            Tok::Punct('{' | '(' | '[') => depth += 1,
            Tok::Punct('}' | ')' | ']') => depth -= 1,
            Tok::Punct(';') if depth <= 0 => {
                i += 1;
                break;
            }
            _ => {}
        }
        i += 1;
    }
    (Node::Stmt { range: (start, i), line: t[start].line }, i)
}

/// The first `{` at paren/bracket depth 0 from `i` — the block opener of
/// an `if`/`while`/`for`/`match` header. (Rust forbids bare struct
/// literals in these header expressions, so the first depth-0 `{` is the
/// block.)
fn find_block_open(t: &[Token], i: usize, end: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        match &t[j].tok {
            Tok::Punct('(' | '[') => depth += 1,
            Tok::Punct(')' | ']') => depth -= 1,
            Tok::Punct('{') if depth <= 0 => return Some(j),
            Tok::Punct(';') if depth <= 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parse an `if`/`else if`/`else` chain (arms; implicit empty arm when no
/// `else`) or a `match` (one arm per `=> ...`).
fn parse_branch(t: &[Token], start: usize, end: usize, is_match: bool) -> (Node, usize) {
    if is_match {
        let Some(open) = find_block_open(t, start + 1, end) else {
            return parse_stmt(t, start, end);
        };
        let close = match_brace(t, open).min(end + 1);
        let arms = parse_match_arms(t, open + 1, close.saturating_sub(1));
        return (Node::Branch { range: (start, close), arms }, close);
    }
    // if / else-if / else chain.
    let mut arms = Vec::new();
    let mut i = start;
    let mut has_else = false;
    loop {
        // `i` sits on `if` (or the final `else` handled below).
        let Some(open) = find_block_open(t, i + 1, end) else {
            return parse_stmt(t, start, end);
        };
        let close = match_brace(t, open).min(end + 1);
        arms.push(parse_block(t, open + 1, close.saturating_sub(1)));
        i = close;
        if i < end && t[i].is_ident("else") {
            if t.get(i + 1).is_some_and(|n| n.is_ident("if")) {
                i += 1; // chain: loop again from the `if`
                continue;
            }
            // Final `else { ... }`.
            let Some(eopen) = find_block_open(t, i + 1, end) else { break };
            let eclose = match_brace(t, eopen).min(end + 1);
            arms.push(parse_block(t, eopen + 1, eclose.saturating_sub(1)));
            has_else = true;
            i = eclose;
        }
        break;
    }
    if !has_else {
        arms.push(Vec::new()); // fall-through path
    }
    (Node::Branch { range: (start, i), arms }, i)
}

/// Split the inside of a `match` body into arm node lists. Each arm is
/// `pattern => body`, the body being a block or an expression ending at a
/// depth-0 `,`.
fn parse_match_arms(t: &[Token], start: usize, end: usize) -> Vec<Vec<Node>> {
    let mut arms = Vec::new();
    let mut i = start;
    while i < end {
        // Find the `=>` of this arm at depth 0.
        let mut depth = 0i32;
        let mut arrow = None;
        let mut j = i;
        while j < end {
            match &t[j].tok {
                Tok::Punct('{' | '(' | '[') => depth += 1,
                Tok::Punct('}' | ')' | ']') => depth -= 1,
                Tok::Punct('=') if depth <= 0 && t.get(j + 1).is_some_and(|n| n.is_punct('>')) => {
                    arrow = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        let body_start = arrow + 2;
        if t.get(body_start).is_some_and(|n| n.is_punct('{')) {
            let close = match_brace(t, body_start).min(end + 1);
            arms.push(parse_block(t, body_start + 1, close.saturating_sub(1)));
            i = close;
            if i < end && t[i].is_punct(',') {
                i += 1;
            }
        } else {
            // Expression arm: to the `,` at depth 0 (or end).
            let mut depth = 0i32;
            let mut k = body_start;
            while k < end {
                match &t[k].tok {
                    Tok::Punct('{' | '(' | '[') => depth += 1,
                    Tok::Punct('}' | ')' | ']') => depth -= 1,
                    Tok::Punct(',') if depth <= 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if k > body_start {
                arms.push(vec![Node::Stmt { range: (body_start, k), line: t[body_start].line }]);
            } else {
                arms.push(Vec::new());
            }
            i = k + 1;
        }
    }
    arms
}

/// Evaluate the paths starting **after** the node containing `open_tok`.
/// Returns `None` when no node contains the token (shouldn't happen for a
/// token inside the body the tree was built from).
pub fn outcome_after(
    nodes: &[Node],
    t: &[Token],
    open_tok: usize,
    is_close: &dyn Fn(&Token) -> bool,
) -> Option<Outcome> {
    let idx = nodes.iter().position(|n| n.contains(open_tok))?;
    let rest = &nodes[idx + 1..];
    let inner = match &nodes[idx] {
        Node::Stmt { range, .. } => {
            // A close in the opening statement itself (the nested
            // `complete(submit(..)?)` shape) closes on the spot.
            if t[range.0..range.1.min(t.len())].iter().any(is_close) {
                return Some(Outcome::Closed);
            }
            return Some(eval_seq(rest, t, is_close));
        }
        Node::Branch { arms, .. } => {
            arms.iter().find_map(|a| outcome_after(a, t, open_tok, is_close))
        }
        Node::Loop { body, .. } => outcome_after(body, t, open_tok, is_close),
    };
    Some(match inner {
        Some(Outcome::Closed) => Outcome::Closed,
        Some(Outcome::Leak(line)) => Outcome::Leak(line),
        Some(Outcome::Partial) => match eval_seq(rest, t, is_close) {
            Outcome::Closed => Outcome::Closed,
            Outcome::Leak(line) => Outcome::Leak(line),
            _ => Outcome::Partial,
        },
        // Open in the inner scope (or the token sat in a branch header):
        // keep walking the enclosing sequence.
        Some(Outcome::Open) | None => eval_seq(rest, t, is_close),
    })
}

/// Evaluate a node sequence from its start.
fn eval_seq(nodes: &[Node], t: &[Token], is_close: &dyn Fn(&Token) -> bool) -> Outcome {
    let mut partial = false;
    for node in nodes {
        match node {
            Node::Stmt { range, line } => {
                let toks = &t[range.0..range.1.min(t.len())];
                if toks.iter().any(is_close) {
                    return Outcome::Closed;
                }
                let escapes = toks.iter().any(|tok| tok.is_ident("return") || tok.is_punct('?'));
                if escapes {
                    return Outcome::Leak(*line);
                }
            }
            Node::Branch { arms, .. } => {
                let outs: Vec<Outcome> = arms.iter().map(|a| eval_seq(a, t, is_close)).collect();
                if let Some(Outcome::Leak(line)) =
                    outs.iter().find(|o| matches!(o, Outcome::Leak(_)))
                {
                    return Outcome::Leak(*line);
                }
                if !outs.is_empty() && outs.iter().all(|o| *o == Outcome::Closed) {
                    return Outcome::Closed;
                }
                if outs.iter().any(|o| matches!(o, Outcome::Closed | Outcome::Partial)) {
                    partial = true;
                }
            }
            Node::Loop { body, .. } => match eval_seq(body, t, is_close) {
                Outcome::Leak(line) => return Outcome::Leak(line),
                // A close inside a loop body is conditional: the loop may
                // run zero times.
                Outcome::Closed | Outcome::Partial => partial = true,
                Outcome::Open => {}
            },
        }
    }
    if partial {
        Outcome::Partial
    } else {
        Outcome::Open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Evaluate `src` as a fn body: the open is the `open_res` ident, the
    /// close is the `close_res` ident.
    fn outcome(src: &str) -> Outcome {
        let l = lex(src);
        let open = l.tokens.iter().position(|t| t.is_punct('{')).expect("body brace");
        let close = match_brace(&l.tokens, open);
        let nodes = build(&l.tokens, open, close);
        let open_tok = l.tokens.iter().position(|t| t.is_ident("open_res")).expect("open_res site");
        outcome_after(&nodes, &l.tokens, open_tok, &|t| t.is_ident("close_res"))
            .expect("open inside body")
    }

    #[test]
    fn straight_line_close_is_closed() {
        assert_eq!(
            outcome("fn f() { let id = open_res(); work(); close_res(id); }"),
            Outcome::Closed
        );
    }

    #[test]
    fn no_close_is_open() {
        assert_eq!(outcome("fn f() { let id = open_res(); work(); }"), Outcome::Open);
    }

    #[test]
    fn question_mark_between_open_and_close_leaks() {
        assert_eq!(
            outcome("fn f() -> R { let id = open_res(); work()?; close_res(id); Ok(()) }"),
            Outcome::Leak(1)
        );
    }

    #[test]
    fn early_return_leaks() {
        assert_eq!(
            outcome("fn f() { let id = open_res(); if bad { return; } close_res(id); }"),
            Outcome::Leak(1)
        );
    }

    #[test]
    fn question_on_open_stmt_is_exempt_and_close_stmt_may_fail() {
        // `?` on the open itself (nothing to close if it fails) and on the
        // closing statement (close happened) are both fine.
        assert_eq!(
            outcome("fn f() -> R { let id = open_res()?; let c = close_res(id)?; Ok(c) }"),
            Outcome::Closed
        );
    }

    #[test]
    fn nested_close_in_the_opening_statement_is_closed() {
        assert_eq!(outcome("fn f() -> R { close_res(open_res()?)?; Ok(()) }"), Outcome::Closed);
    }

    #[test]
    fn close_in_one_branch_arm_is_partial() {
        assert_eq!(
            outcome("fn f() { let id = open_res(); if done { close_res(id); } }"),
            Outcome::Partial
        );
    }

    #[test]
    fn close_in_both_arms_is_closed() {
        assert_eq!(
            outcome(
                "fn f() { let id = open_res(); if a { close_res(id); } else { close_res(id); } }"
            ),
            Outcome::Closed
        );
    }

    #[test]
    fn close_in_every_match_arm_is_closed() {
        assert_eq!(
            outcome(
                "fn f() { let id = open_res(); match r { Ok(v) => close_res(id), Err(e) => { log(e); close_res(id); } } }"
            ),
            Outcome::Closed
        );
    }

    #[test]
    fn close_inside_loop_is_partial() {
        assert_eq!(
            outcome("fn f() { let id = open_res(); for x in xs { close_res(id); } }"),
            Outcome::Partial
        );
    }

    #[test]
    fn break_inside_loop_then_close_after_is_closed() {
        assert_eq!(
            outcome(
                "fn f() { let id = open_res(); loop { step(); if done { break; } } close_res(id); }"
            ),
            Outcome::Closed
        );
    }

    #[test]
    fn open_inside_branch_close_after_is_closed() {
        assert_eq!(
            outcome("fn f() { let mut id = 0; if go { id = open_res(); } close_res(id); }"),
            Outcome::Closed
        );
    }
}
