//! `// audit:allow(Lxxx, reason = "...")` suppression pragmas.
//!
//! A pragma suppresses **exactly one** finding of the named lint, on the
//! pragma's own line (trailing comment) or on the immediately following
//! line (comment above the offending statement). A `reason` is mandatory —
//! an allow without a recorded justification is itself a finding — and a
//! pragma that suppresses nothing is reported as unused so stale allows
//! cannot accumulate.

use crate::lexer::Comment;

/// A parsed suppression pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-indexed line the pragma comment starts on.
    pub line: u32,
    /// Lint code it targets (`L001` ... `L007`).
    pub code: String,
    /// The mandatory justification.
    pub reason: String,
}

/// A pragma that could not be parsed (missing reason, bad syntax).
#[derive(Debug, Clone)]
pub struct MalformedPragma {
    /// 1-indexed line.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// Scan a file's comments for pragmas. Doc comments (`///`, `//!`,
/// `/** */`) are ignored: documentation *about* the pragma syntax must not
/// act as a suppression, so pragmas are only honored in plain comments.
pub fn scan(comments: &[Comment]) -> (Vec<Pragma>, Vec<MalformedPragma>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        if matches!(c.text.chars().next(), Some('/' | '!' | '*')) {
            continue;
        }
        let Some(start) = c.text.find("audit:allow") else { continue };
        let rest = &c.text[start + "audit:allow".len()..];
        match parse_args(rest) {
            Ok((code, reason)) => ok.push(Pragma { line: c.line, code, reason }),
            Err(problem) => bad.push(MalformedPragma { line: c.line, problem }),
        }
    }
    (ok, bad)
}

/// Parse `(Lxxx, reason = "...")`.
fn parse_args(rest: &str) -> Result<(String, String), String> {
    let rest = rest.trim_start();
    let Some(inner) = rest.strip_prefix('(') else {
        return Err("expected `(` after audit:allow".to_string());
    };
    let Some(close) = inner.find(')') else {
        return Err("unterminated audit:allow(...)".to_string());
    };
    let inner = &inner[..close];
    let mut parts = inner.splitn(2, ',');
    let code = parts.next().unwrap_or("").trim().to_string();
    if code.len() != 4 || !code.starts_with('L') || !code[1..].chars().all(|c| c.is_ascii_digit()) {
        return Err(format!("bad lint code `{code}` (expected Lxxx)"));
    }
    let Some(reason_part) = parts.next() else {
        return Err("missing `reason = \"...\"` argument".to_string());
    };
    let reason_part = reason_part.trim();
    let Some(eq) = reason_part.strip_prefix("reason") else {
        return Err("second argument must be `reason = \"...\"`".to_string());
    };
    let eq = eq.trim_start();
    let Some(val) = eq.strip_prefix('=') else {
        return Err("second argument must be `reason = \"...\"`".to_string());
    };
    let val = val.trim();
    let reason = val.trim_matches('"').trim();
    if reason.is_empty() {
        return Err("reason must not be empty".to_string());
    }
    Ok((code, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pragmas(src: &str) -> (Vec<Pragma>, Vec<MalformedPragma>) {
        scan(&lex(src).comments)
    }

    #[test]
    fn well_formed_pragma_parses() {
        let (ok, bad) =
            pragmas("x(); // audit:allow(L002, reason = \"infallible by construction\")");
        assert!(bad.is_empty());
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].code, "L002");
        assert_eq!(ok[0].reason, "infallible by construction");
        assert_eq!(ok[0].line, 1);
    }

    #[test]
    fn missing_reason_is_malformed() {
        let (ok, bad) = pragmas("// audit:allow(L001)");
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].problem.contains("reason"));
    }

    #[test]
    fn empty_reason_is_malformed() {
        let (ok, bad) = pragmas("// audit:allow(L001, reason = \"\")");
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn bad_code_is_malformed() {
        let (ok, bad) = pragmas("// audit:allow(FOO, reason = \"x\")");
        assert!(ok.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].problem.contains("lint code"));
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let (ok, bad) = pragmas("// nothing to see here\n/* audit is great */");
        assert!(ok.is_empty() && bad.is_empty());
    }

    #[test]
    fn doc_comments_never_carry_pragmas() {
        let src = "/// write audit:allow(L002, reason = \"x\") above the line\n//! audit:allow(L001)\nfn f() {}";
        let (ok, bad) = pragmas(src);
        assert!(ok.is_empty() && bad.is_empty());
    }
}
