//! Source model: a lexed file with crate attribution, `#[cfg(test)]`
//! span tracking and item (fn / struct) extraction.

use crate::lexer::{lex, Comment, Token};

/// One Rust source file, lexed and classified.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path (`crates/flash/src/page.rs`).
    pub path: String,
    /// Short crate name (`flash`, `noftl`, `engine`, ... or `ipa` for the
    /// facade crate).
    pub krate: String,
    /// Whether the whole file is test/bench/example code by location.
    pub test_file: bool,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Comment side-channel (pragma scanning).
    pub comments: Vec<Comment>,
    /// `in_test[i]` — token `i` lies inside a `#[cfg(test)]` item.
    in_test: Vec<bool>,
}

impl SourceFile {
    /// Lex and classify one file. `path` decides the location-based test
    /// classification: anything under `tests/`, `benches/` or `examples/`
    /// is test code in its entirety.
    pub fn parse(path: &str, krate: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let test_file = path.split('/').any(|seg| {
            seg == "tests" || seg == "benches" || seg == "examples" || seg == "fixtures"
        });
        let in_test = mark_cfg_test(&lexed.tokens);
        SourceFile {
            path: path.to_string(),
            krate: krate.to_string(),
            test_file,
            tokens: lexed.tokens,
            comments: lexed.comments,
            in_test,
        }
    }

    /// Whether the token at `idx` is test code (by file location or an
    /// enclosing `#[cfg(test)]` item).
    pub fn is_test(&self, idx: usize) -> bool {
        self.test_file || self.in_test.get(idx).copied().unwrap_or(false)
    }

    /// All function items in the file: `(name, signature token range,
    /// body token range)`. Ranges are half-open index ranges into
    /// [`SourceFile::tokens`]; nested fns yield their own entries.
    pub fn functions(&self) -> Vec<FnItem> {
        let t = &self.tokens;
        let mut out = Vec::new();
        let mut i = 0;
        while i < t.len() {
            if t[i].is_ident("fn") {
                if let Some(name) = t.get(i + 1).and_then(Token::ident) {
                    let sig_start = i;
                    // Signature runs to the first `{` at bracket depth 0,
                    // or aborts at `;` (trait method declaration).
                    let mut j = i + 2;
                    let mut depth = 0i32;
                    let mut body = None;
                    while j < t.len() {
                        match &t[j].tok {
                            crate::lexer::Tok::Punct('(' | '[' | '<') => depth += 1,
                            crate::lexer::Tok::Punct(')' | ']' | '>') => depth -= 1,
                            crate::lexer::Tok::Punct('{') if depth <= 0 => {
                                body = Some(j);
                                break;
                            }
                            crate::lexer::Tok::Punct(';') if depth <= 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if let Some(open) = body {
                        let close = match_brace(t, open);
                        out.push(FnItem {
                            name: name.to_string(),
                            line: t[i].line,
                            sig: (sig_start, open),
                            body: (open, close),
                        });
                    }
                }
            }
            i += 1;
        }
        out
    }
}

/// A function item: name plus signature/body token ranges.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Half-open token range of the signature (from `fn` to the body `{`).
    pub sig: (usize, usize),
    /// Half-open token range of the body (from `{` to past the matching
    /// `}`).
    pub body: (usize, usize),
}

/// Index one past the brace matching `t[open]` (which must be `{`).
/// Returns `t.len()` when unbalanced.
pub fn match_brace(t: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (off, tok) in t[open..].iter().enumerate() {
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return open + off + 1;
            }
        }
    }
    t.len()
}

/// Mark every token covered by a `#[cfg(test)]` item. The attribute's item
/// extends to the matching `}` of its first top-level `{`, or to the first
/// `;` encountered before any brace (attribute on a `use` / statement).
fn mark_cfg_test(t: &[Token]) -> Vec<bool> {
    let mut marks = vec![false; t.len()];
    let mut i = 0;
    while i + 6 < t.len() {
        let is_cfg_test = t[i].is_punct('#')
            && t[i + 1].is_punct('[')
            && t[i + 2].is_ident("cfg")
            && t[i + 3].is_punct('(')
            && t[i + 4].is_ident("test")
            && t[i + 5].is_punct(')')
            && t[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the item end: first `{` (then brace-match) or `;` before it.
        let mut j = i + 7;
        let mut end = t.len();
        while j < t.len() {
            if t[j].is_punct('{') {
                end = match_brace(t, j);
                break;
            }
            if t[j].is_punct(';') {
                end = j + 1;
                break;
            }
            j += 1;
        }
        for m in marks.iter_mut().take(end).skip(i) {
            *m = true;
        }
        i = end;
    }
    marks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\nfn after() {}";
        let f = SourceFile::parse("crates/flash/src/x.rs", "flash", src);
        let unwraps: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!f.is_test(unwraps[0]), "live code is not test");
        assert!(f.is_test(unwraps[1]), "cfg(test) module is test");
        let after = f.tokens.iter().position(|t| t.is_ident("after")).expect("after fn");
        assert!(!f.is_test(after), "marking ends at the module brace");
    }

    #[test]
    fn test_dirs_are_test_files() {
        let f = SourceFile::parse("crates/flash/tests/x.rs", "flash", "fn a() {}");
        assert!(f.test_file);
        assert!(f.is_test(0));
        let f = SourceFile::parse("crates/flash/src/x.rs", "flash", "fn a() {}");
        assert!(!f.test_file);
    }

    #[test]
    fn functions_are_extracted_with_bodies() {
        let src = "impl X { fn a(&self) -> u32 { self.b() } }\nfn top(x: Vec<u8>) { if x.is_empty() { return; } }";
        let f = SourceFile::parse("crates/flash/src/x.rs", "flash", src);
        let fns = f.functions();
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "top"]);
        // `top`'s body covers the nested braces.
        let top = &fns[1];
        let body = &f.tokens[top.body.0..top.body.1];
        assert!(body.iter().any(|t| t.is_ident("is_empty")));
        assert!(body.iter().any(|t| t.is_ident("return")));
    }

    #[test]
    fn generic_signature_does_not_confuse_body_detection() {
        let src = "fn g<T: Fn() -> Option<u8>>(f: T) -> Option<u8> { f() }";
        let f = SourceFile::parse("crates/flash/src/x.rs", "flash", src);
        let fns = f.functions();
        assert_eq!(fns.len(), 1);
        assert!(f.tokens[fns[0].body.0].is_punct('{'));
    }
}
