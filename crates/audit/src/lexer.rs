//! A lightweight Rust lexer: just enough token structure for the lints.
//!
//! The auditor deliberately avoids `syn`/`proc-macro2` (it must build with
//! no dependencies at all), so this module hand-rolls the small part of
//! Rust's lexical grammar the lints need: identifiers, single-character
//! punctuation, literals (collapsed — their content can never produce a
//! finding) and lifetimes. Comments are *not* tokens; they are collected
//! separately with their line numbers so the pragma layer
//! ([`crate::pragma`]) can scan them for `audit:allow(...)` markers.
//!
//! Getting comments and literals right is the whole point: a lint that
//! greps raw text would flag `.unwrap()` inside a doc example or a string;
//! operating on this token stream makes those immune by construction.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unwrap`, `PageData`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `#`, `(`, `!`, ...).
    Punct(char),
    /// Any literal — string, raw string, byte string, char or number.
    /// Content is discarded: literals can never trigger a lint.
    Lit,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// A token plus the 1-indexed source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-indexed line number.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }
}

/// A comment (line or block) with the 1-indexed line it starts on. Doc
/// comments (`///`, `//!`) are included; the leading `//` / `/*` is
/// stripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-indexed line number of the comment start.
    pub line: u32,
    /// Comment text without the comment introducer.
    pub text: String,
}

/// Output of [`lex`]: the token stream plus the comment side-channel.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lex Rust source text. Never fails: unterminated constructs are consumed
/// to end-of-input (an auditor must not die on the code it is auditing —
/// the compiler will report the real syntax error).
pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek() {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.out.tokens.push(Token { tok: Tok::Punct(c), line });
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // consume "//"
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // consume "/*"
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    /// A `"..."` string with escape handling.
    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.out.tokens.push(Token { tok: Tok::Lit, line });
    }

    /// A raw string `r"..."` / `r#"..."#` (any number of `#`), entered with
    /// the cursor on the first `#` or `"` after the prefix.
    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek_at(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.out.tokens.push(Token { tok: Tok::Lit, line });
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // the quote
        let first = self.peek();
        let second = self.peek_at(1);
        let is_lifetime =
            matches!(first, Some(c) if c.is_alphabetic() || c == '_') && second != Some('\'');
        if is_lifetime {
            while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
                self.bump();
            }
            self.out.tokens.push(Token { tok: Tok::Lifetime, line });
            return;
        }
        // Char literal: consume up to the closing quote (escape-aware).
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.out.tokens.push(Token { tok: Tok::Lit, line });
    }

    /// Numbers (`42`, `0xFF`, `1_000`, `3.5e-2`). Approximate but safe:
    /// the exact value never matters to a lint.
    fn number(&mut self) {
        let line = self.line;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
            self.bump();
        }
        // A fraction only when followed by a digit ('0..x' range syntax
        // must keep its dots).
        if self.peek() == Some('.') && matches!(self.peek_at(1), Some(c) if c.is_ascii_digit()) {
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
                self.bump();
            }
        }
        self.out.tokens.push(Token { tok: Tok::Lit, line });
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut s = String::new();
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
            s.push(self.bump().unwrap_or('_'));
        }
        // Raw / byte string prefixes: r"", r#""#, b"", br"", br#""#.
        let is_raw_prefix =
            matches!(s.as_str(), "r" | "br") && matches!(self.peek(), Some('"' | '#'));
        let is_byte_str = s == "b" && self.peek() == Some('"');
        let is_byte_char = s == "b" && self.peek() == Some('\'');
        if is_raw_prefix {
            self.raw_string();
            return;
        }
        if is_byte_str {
            self.string();
            return;
        }
        if is_byte_char {
            self.char_or_lifetime();
            return;
        }
        if s == "r"
            && self.peek() == Some('#')
            && matches!(self.peek_at(1), Some(c) if c.is_alphabetic() || c == '_')
        {
            // Raw identifier r#ident: consume and keep the ident part.
            self.bump();
            let mut raw = String::new();
            while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
                raw.push(self.bump().unwrap_or('_'));
            }
            self.out.tokens.push(Token { tok: Tok::Ident(raw), line });
            return;
        }
        self.out.tokens.push(Token { tok: Tok::Ident(s), line });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.iter().filter_map(|t| t.ident().map(str::to_string)).collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("let x = 1; // call .unwrap() here\n/* panic! */ let y = 2;");
        assert!(!idents("// .unwrap()").contains(&"unwrap".to_string()));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("unwrap"));
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn strings_are_opaque() {
        let l = lex("let s = \"foo.unwrap()\"; let t = \"escaped \\\" panic!\";");
        let ids: Vec<_> = l.tokens.iter().filter_map(Token::ident).collect();
        assert!(!ids.contains(&"unwrap"));
        assert!(!ids.contains(&"panic"));
        assert_eq!(l.tokens.iter().filter(|t| t.tok == Tok::Lit).count(), 2);
    }

    #[test]
    fn raw_and_byte_strings() {
        let src = "let a = r\"x.unwrap()\"; let b = br#\"panic!\"#; let c = b\"todo!\";";
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"todo".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = l.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let lits = l.tokens.iter().filter(|t| t.tok == Tok::Lit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(lits, 2);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let l = lex("for i in 0..10 {}");
        let dots = l.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn x() {}");
        assert!(l.tokens.iter().any(|t| t.is_ident("fn")));
        assert_eq!(l.comments.len(), 1);
    }
}
