//! L007 — transaction identity is the engine's business.
//!
//! The session redesign (see DESIGN.md, "Concurrency & group commit")
//! made the RAII [`Txn`] guard the only sanctioned way to run a
//! transaction: `db.txn()` hands out a guard whose drop path aborts, so
//! a transaction can never leak. Conjuring a `TxId` by hand, or calling
//! the deprecated shims, reopens exactly the leak the guard closed. This
//! lint forbids, in non-test code of every crate except `ipa-engine`
//! (where the id type and the shims live):
//!
//! * `TxId(...)` — raw transaction-id construction (the tuple
//!   constructor; `TxId` in type position or use-trees does not match);
//! * zero-argument `.begin()` calls — the deprecated
//!   `Database::begin` shim (a `fn begin(...)` definition or a call
//!   with arguments does not match);
//! * `.commit(arg)` / `.abort(arg)` calls **with** an argument — the
//!   deprecated id-threading shims. The guard's own `tx.commit()` /
//!   `tx.abort()` are zero-argument and stay legal.

use super::Lint;
use crate::findings::{Finding, Severity};
use crate::lexer::Token;
use crate::Analysis;

/// See module docs.
pub struct TxDiscipline;

impl Lint for TxDiscipline {
    fn code(&self) -> &'static str {
        "L007"
    }
    fn name(&self) -> &'static str {
        "tx-session-discipline"
    }
    fn description(&self) -> &'static str {
        "no raw TxId construction or deprecated begin/commit(tx)/abort(tx) \
         shims outside ipa-engine; transactions run through the Txn guard"
    }

    fn check(&self, cx: &Analysis<'_>, out: &mut Vec<Finding>) {
        let ws = cx.ws;
        for file in &ws.files {
            if file.krate == "engine" || file.krate == "audit" || file.test_file {
                continue;
            }
            let t = &file.tokens;
            for i in 0..t.len() {
                if file.is_test(i) {
                    continue;
                }
                let what = if is_txid_construction(t, i) {
                    Some("raw `TxId(...)` construction".to_string())
                } else if super::pat::is_nullary_method(t, i, "begin") {
                    Some("deprecated `.begin()` shim".to_string())
                } else if is_unary_method(t, i, "commit") {
                    Some("deprecated id-threading `.commit(tx)` shim".to_string())
                } else if is_unary_method(t, i, "abort") {
                    Some("deprecated id-threading `.abort(tx)` shim".to_string())
                } else {
                    None
                };
                if let Some(what) = what {
                    out.push(Finding {
                        code: "L007",
                        severity: Severity::Error,
                        file: file.path.clone(),
                        line: t[i].line,
                        message: format!(
                            "{what} outside ipa-engine; run transactions through the \
                             RAII guard from `Database::txn()` (drop = abort, no leaks)"
                        ),
                    });
                }
            }
        }
    }
}

/// `TxId` immediately followed by `(` — the tuple constructor (in
/// expression or pattern position). Type ascriptions (`: TxId`),
/// signatures (`-> TxId`) and use-trees never put a `(` right after the
/// name, so they do not match.
fn is_txid_construction(t: &[Token], i: usize) -> bool {
    t[i].is_ident("TxId") && t.get(i + 1).is_some_and(|n| n.is_punct('('))
}

/// `t[i..]` starts with `.name(` and the call has at least one argument
/// (the token after `(` is not `)`). Distinguishes the deprecated
/// `db.commit(tx)` from the guard's legal `tx.commit()`.
fn is_unary_method(t: &[Token], i: usize, name: &str) -> bool {
    i + 3 < t.len()
        && t[i].is_punct('.')
        && t[i + 1].is_ident(name)
        && t[i + 2].is_punct('(')
        && !t[i + 3].is_punct(')')
}
