//! L004 — every queued-I/O submission must have a completion path.
//!
//! The PR-2 queued command API (`submit_* -> CmdId`, then
//! `complete` / `poll_completions` / `drain`) makes it possible to leak
//! commands: a function that submits but never drains leaves work stuck in
//! the device queues forever, and the chip-parallel scheduler stalls once
//! the host queue fills. This lint requires that every non-test function
//! containing a `submit` / `submit_*` call satisfies one of:
//!
//! * it also calls a completion API (`complete`, `poll_completions`,
//!   `drain`, `drain_completions`, `drain_all`) — the usual
//!   submit-then-drain shape;
//! * its own name starts with `submit` or `stage` — it *is* the
//!   producer-side API, deferring the drain to its caller by convention
//!   (e.g. `Db::stage_flush`);
//! * `CmdId` appears in its signature — it hands the command id back to
//!   the caller, who owns completion.
//!
//! The check is a per-function token heuristic, not a CFG analysis: it
//! cannot see *conditional* leaks, but it pins the repo-wide convention
//! that submission and completion responsibilities are never silently
//! split across unrelated functions.

use super::Lint;
use crate::findings::{Finding, Severity};
use crate::lexer::Token;
use crate::workspace::Workspace;

/// See module docs.
pub struct QueuePairing;

/// Completion-side API names.
const COMPLETION_FNS: [&str; 5] =
    ["complete", "poll_completions", "drain", "drain_completions", "drain_all"];

impl Lint for QueuePairing {
    fn code(&self) -> &'static str {
        "L004"
    }
    fn name(&self) -> &'static str {
        "queue-pairing"
    }
    fn description(&self) -> &'static str {
        "every submit/submit_* call is paired with complete/poll_completions/drain \
         in the same function, or the function visibly defers completion \
         (submit*/stage* name, CmdId in signature)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if file.krate == "audit" || file.test_file {
                continue;
            }
            let t = &file.tokens;
            for f in file.functions() {
                if file.is_test(f.body.0) {
                    continue;
                }
                if f.name.starts_with("submit") || f.name.starts_with("stage") {
                    continue;
                }
                let body = &t[f.body.0..f.body.1];
                let Some(submit_tok) = body.iter().zip(body.iter().skip(1)).find_map(|(a, b)| {
                    let id = a.ident()?;
                    let is_submit = id == "submit" || id.starts_with("submit_");
                    (is_submit && b.is_punct('(')).then_some(a)
                }) else {
                    continue;
                };
                let sig = &t[f.sig.0..f.sig.1];
                if sig.iter().any(|tok| tok.is_ident("CmdId")) {
                    continue;
                }
                if body.iter().any(is_completion) {
                    continue;
                }
                out.push(Finding {
                    code: "L004",
                    severity: Severity::Error,
                    file: file.path.clone(),
                    line: submit_tok.line,
                    message: format!(
                        "fn `{}` submits queued I/O but never completes it; pair the \
                         submit with complete/poll_completions/drain, return the CmdId, \
                         or rename to submit_*/stage_* to defer completion to the caller",
                        f.name
                    ),
                });
            }
        }
    }
}

/// Is `tok` a completion-API name? (Cheap containment check — position
/// relative to `(` is not needed because the names are specific enough.)
fn is_completion(tok: &Token) -> bool {
    tok.ident().is_some_and(|id| COMPLETION_FNS.contains(&id))
}
