//! L004 — every queued-I/O submission must have a completion path.
//!
//! The PR-2 queued command API (`submit_* -> CmdId`, then
//! `complete` / `poll_completions` / `drain`) makes it possible to leak
//! commands: a function that submits but never drains leaves work stuck in
//! the device queues forever, and the chip-parallel scheduler stalls once
//! the host queue fills. This lint requires that every `submit` /
//! `submit_*` call site in non-test code satisfies one of:
//!
//! * every path from the submit reaches a completion API (`complete`,
//!   `poll_completions`, `drain`, `drain_completions`, `drain_all`)
//!   before the function can exit — checked over the per-function CFG
//!   skeleton ([`crate::cfg`]), so an early `return` / `?` between
//!   submit and completion, or a completion on only one branch arm, is a
//!   finding even when the completion call is textually present;
//! * the enclosing function's name starts with `submit` or `stage` — it
//!   *is* the producer-side API, deferring the drain to its caller by
//!   convention (e.g. `Db::stage_flush`);
//! * `CmdId` appears in its signature — it hands the command id back to
//!   the caller, who owns completion.
//!
//! The submit statement itself is outside the checked window: a `?` on
//! `let id = self.submit_read(..)?;` is not a leak (the submit failed —
//! there is nothing to complete).

use super::Lint;
use crate::cfg::{self, Outcome};
use crate::findings::{Finding, Severity};
use crate::lexer::Token;
use crate::Analysis;

/// See module docs.
pub struct QueuePairing;

/// Completion-side API names.
const COMPLETION_FNS: [&str; 5] =
    ["complete", "poll_completions", "drain", "drain_completions", "drain_all"];

impl Lint for QueuePairing {
    fn code(&self) -> &'static str {
        "L004"
    }
    fn name(&self) -> &'static str {
        "queue-pairing"
    }
    fn description(&self) -> &'static str {
        "every submit/submit_* call reaches complete/poll_completions/drain on \
         all CFG paths of its function, or the function visibly defers \
         completion (submit*/stage* name, CmdId in signature)"
    }

    fn check(&self, cx: &Analysis<'_>, out: &mut Vec<Finding>) {
        let is_close = |tok: &Token| tok.ident().is_some_and(|id| COMPLETION_FNS.contains(&id));
        for (fi, file) in cx.ws.files.iter().enumerate() {
            if file.krate == "audit" || file.test_file {
                continue;
            }
            let t = &file.tokens;
            for (_, f) in cx.items.fns_of_file(fi) {
                if file.is_test(f.body.0) {
                    continue;
                }
                if f.name.starts_with("submit") || f.name.starts_with("stage") {
                    continue;
                }
                let sites: Vec<usize> = (f.body.0..f.body.1.min(t.len()))
                    .filter(|&i| {
                        t[i].ident().is_some_and(|id| id == "submit" || id.starts_with("submit_"))
                            && t.get(i + 1).is_some_and(|n| n.is_punct('('))
                    })
                    .collect();
                if sites.is_empty() {
                    continue;
                }
                if t[f.sig.0..f.sig.1].iter().any(|tok| tok.is_ident("CmdId")) {
                    continue;
                }
                let nodes = cfg::build(t, f.body.0, f.body.1);
                for site in sites {
                    let outcome =
                        cfg::outcome_after(&nodes, t, site, &is_close).unwrap_or(Outcome::Open);
                    if let Some(why) = describe_leak(outcome) {
                        out.push(Finding {
                            code: "L004",
                            severity: Severity::Error,
                            file: file.path.clone(),
                            line: t[site].line,
                            message: format!(
                                "fn `{}` submits queued I/O but {why}; pair the submit \
                                 with complete/poll_completions/drain on every path, \
                                 return the CmdId, or rename to submit_*/stage_* to \
                                 defer completion to the caller",
                                f.name
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Human phrasing for a non-Closed outcome; `None` when the path is fine.
fn describe_leak(outcome: Outcome) -> Option<String> {
    match outcome {
        Outcome::Closed => None,
        Outcome::Open => Some("never completes it".to_string()),
        Outcome::Leak(line) => {
            Some(format!("an early exit (`return`/`?`) at line {line} can leave it uncompleted"))
        }
        Outcome::Partial => Some("completes it only on some paths".to_string()),
    }
}
