//! L002 — no `unwrap()` / `expect()` / `panic!` / `todo!` in the hot-path
//! crates.
//!
//! `flash`, `noftl` and `engine` sit on the availability-critical path of
//! the ROADMAP's production north star; a panic there takes the whole
//! store down. Non-test code in those crates must surface failures as
//! typed errors (`FlashError` / `NoFtlError` / `EngineError`).
//!
//! Deliberately **not** flagged (false-positive guards):
//!
//! * test code — `#[cfg(test)]` modules and anything under `tests/`,
//!   `benches/`, `examples/`;
//! * the total variants `unwrap_or`, `unwrap_or_else`,
//!   `unwrap_or_default`, `expect_err` (distinct identifiers — the lexer
//!   reads maximal identifiers, so `unwrap_or` can never match `unwrap`);
//! * `assert!` / `debug_assert!` — checked invariants are encouraged, the
//!   ban is on *unchecked* shortcuts;
//! * doc comments and string literals, which are not tokens at all.

use super::pat;
use super::Lint;
use crate::findings::{Finding, Severity};
use crate::Analysis;

/// See module docs.
pub struct NoPanic;

/// Crates on the availability-critical path.
const HOT_CRATES: [&str; 3] = ["flash", "noftl", "engine"];

/// Macros that abort instead of returning an error.
const PANIC_MACROS: [&str; 4] = ["panic", "todo", "unimplemented", "unreachable"];

impl Lint for NoPanic {
    fn code(&self) -> &'static str {
        "L002"
    }
    fn name(&self) -> &'static str {
        "no-panic"
    }
    fn description(&self) -> &'static str {
        "no unwrap()/expect()/panic!/todo! in non-test code of flash/noftl/engine; \
         use typed errors"
    }

    fn check(&self, cx: &Analysis<'_>, out: &mut Vec<Finding>) {
        let ws = cx.ws;
        for file in &ws.files {
            if !HOT_CRATES.contains(&file.krate.as_str()) || file.test_file {
                continue;
            }
            let t = &file.tokens;
            for i in 0..t.len() {
                if file.is_test(i) {
                    continue;
                }
                let what = if pat::is_nullary_method(t, i, "unwrap") {
                    Some(".unwrap()")
                } else if pat::is_method_call(t, i, "expect") {
                    Some(".expect(..)")
                } else {
                    PANIC_MACROS.iter().find(|m| pat::is_macro(t, i, m)).map(|m| match *m {
                        "panic" => "panic!",
                        "todo" => "todo!",
                        "unimplemented" => "unimplemented!",
                        _ => "unreachable!",
                    })
                };
                if let Some(what) = what {
                    out.push(Finding {
                        code: "L002",
                        severity: Severity::Error,
                        file: file.path.clone(),
                        line: t[i].line,
                        message: format!(
                            "{what} in hot-path crate `{}`; return a typed error \
                             (FlashError/NoFtlError/EngineError) instead",
                            file.krate
                        ),
                    });
                }
            }
        }
    }
}
