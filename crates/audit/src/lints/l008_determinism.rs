//! L008 — the deterministic core must not observe nondeterministic order
//! or ambient host state.
//!
//! Bit-identical replay is a load-bearing property of the stack: the
//! multi-client pool (PR 7) asserts identical traces per seed, fault
//! injection (PR 4) replays failure schedules, and every benchmark
//! comparison assumes the same seed produces the same device history.
//! Two things silently break it:
//!
//! * **unordered container iteration** — `HashMap` / `HashSet` iterate in
//!   randomized order (std's SipHash seeding), so any iteration whose
//!   effects are order-sensitive diverges between processes. Keyed
//!   lookups (`get`, `contains_key`, `insert`, `remove`) are fine; so is
//!   iteration whose *statement* visibly reduces to an order-insensitive
//!   value (`sum`, `count`, `len`, `min`/`max`, `all`/`any`, or an
//!   explicit `sort*`). Everything else should use `BTreeMap` /
//!   `BTreeSet` or sort before acting.
//! * **ambient host state** — `Instant::now` / `SystemTime`,
//!   `thread::spawn`, and `std::env` reads inject wall-clock, scheduler
//!   or environment nondeterminism into simulated time.
//!
//! Scope: non-test code of `flash` / `noftl` / `engine` (the replayed
//! core). Workloads, bench and obs are free to read clocks. Deliberate
//! exceptions take `// audit:allow(L008, reason = ...)`.

use std::collections::BTreeSet;

use super::Lint;
use crate::findings::{Finding, Severity};
use crate::lexer::Token;
use crate::source::SourceFile;
use crate::Analysis;

/// See module docs.
pub struct Determinism;

/// Crates that must replay bit-identically.
const CORE_CRATES: [&str; 3] = ["flash", "noftl", "engine"];

/// Iteration methods whose visit order is the hash order.
const ITER_METHODS: [&str; 11] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Idents that make an iterating statement order-insensitive.
const ORDER_INSENSITIVE: [&str; 19] = [
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "sum",
    "count",
    "len",
    "all",
    "any",
    "contains",
    "fold",
];

impl Lint for Determinism {
    fn code(&self) -> &'static str {
        "L008"
    }
    fn name(&self) -> &'static str {
        "determinism"
    }
    fn description(&self) -> &'static str {
        "no order-sensitive HashMap/HashSet iteration and no Instant/SystemTime/\
         thread::spawn/std::env reads in non-test flash/noftl/engine code; use \
         BTreeMap/BTreeSet or sort, and simulated time"
    }

    fn check(&self, cx: &Analysis<'_>, out: &mut Vec<Finding>) {
        for file in &cx.ws.files {
            if !CORE_CRATES.contains(&file.krate.as_str()) || file.test_file {
                continue;
            }
            let t = &file.tokens;
            let hashed = hashed_names(t);
            for i in 0..t.len() {
                if file.is_test(i) {
                    continue;
                }
                if let Some(msg) = ambient_state(t, i) {
                    out.push(finding(file, t[i].line, msg));
                    continue;
                }
                if let Some(name) = iteration_site(t, i, &hashed) {
                    let (lo, hi) = statement_bounds(t, i);
                    let insensitive = t[lo..hi]
                        .iter()
                        .any(|tok| tok.ident().is_some_and(|id| ORDER_INSENSITIVE.contains(&id)));
                    if !insensitive {
                        out.push(finding(
                            file,
                            t[i].line,
                            format!(
                                "iteration over hash-ordered `{name}` in the deterministic \
                                 core; visit order varies per process — use BTreeMap/\
                                 BTreeSet, sort the keys first, or reduce to an \
                                 order-insensitive value in the same statement"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

fn finding(file: &SourceFile, line: u32, message: String) -> Finding {
    Finding { code: "L008", severity: Severity::Error, file: file.path.clone(), line, message }
}

/// Names declared (or assigned) with a `HashMap` / `HashSet` type in this
/// file: `name: HashMap<..>` fields/params/ascriptions and
/// `name = HashMap::new()`-style initializations, `std::collections::`
/// path prefixes included.
fn hashed_names(t: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..t.len() {
        if !t[i].ident().is_some_and(|id| id == "HashMap" || id == "HashSet") {
            continue;
        }
        // Walk back over a `std :: collections ::`-style path prefix.
        let mut k = i;
        while k >= 3
            && t[k - 1].is_punct(':')
            && t[k - 2].is_punct(':')
            && t[k - 3].ident().is_some()
        {
            k -= 3;
        }
        // Skip reference/mutability sigils: `name: &mut HashMap<..>`.
        while k >= 1
            && (t[k - 1].is_punct('&')
                || t[k - 1].is_ident("mut")
                || t[k - 1].tok == crate::lexer::Tok::Lifetime)
        {
            k -= 1;
        }
        if k < 2 {
            continue;
        }
        // `name : HashMap` (single colon — not a path `::`).
        if t[k - 1].is_punct(':') && !t[k - 2].is_punct(':') {
            if let Some(name) = t[k - 2].ident() {
                names.insert(name.to_string());
            }
        }
        // `name = HashMap::new()` / `= HashMap::with_capacity(..)`.
        if t[k - 1].is_punct('=') && !t[k - 2].is_punct('=') {
            if let Some(name) = t[k - 2].ident() {
                names.insert(name.to_string());
            }
        }
    }
    names
}

/// If token `i` is a hash-ordered iteration site, the offending name:
/// either `name.iter_method(` for a known hashed `name`, or a
/// `for .. in` whose iterated expression mentions a hashed name without
/// an adapter that restores order.
fn iteration_site(t: &[Token], i: usize, hashed: &BTreeSet<String>) -> Option<String> {
    // `name . iter (` — the receiver ident directly before the method.
    if let Some(name) = t[i].ident() {
        if hashed.contains(name)
            && t.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && t.get(i + 2).and_then(Token::ident).is_some_and(|m| ITER_METHODS.contains(&m))
            && t.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            return Some(name.to_string());
        }
    }
    // `for pat in <expr> {` with a hashed name in the header expression.
    if t[i].is_ident("for") {
        let mut j = i + 1;
        while j < t.len() && !t[j].is_ident("in") {
            if t[j].is_punct('{') || t[j].is_punct(';') {
                return None; // not a for-loop header after all
            }
            j += 1;
        }
        let mut depth = 0i32;
        let mut k = j + 1;
        while k < t.len() {
            match &t[k].tok {
                crate::lexer::Tok::Punct('(' | '[') => depth += 1,
                crate::lexer::Tok::Punct(')' | ']') => depth -= 1,
                crate::lexer::Tok::Punct('{') if depth <= 0 => break,
                crate::lexer::Tok::Ident(id) if hashed.contains(id) => {
                    // Already reported at the `name.iter()` site?
                    let direct = t.get(k + 1).is_some_and(|n| n.is_punct('.'))
                        && t.get(k + 2)
                            .and_then(Token::ident)
                            .is_some_and(|m| ITER_METHODS.contains(&m));
                    if !direct {
                        return Some(id.clone());
                    }
                    return None;
                }
                _ => {}
            }
            k += 1;
        }
    }
    None
}

/// Ambient host-state reads: wall clocks, threads, environment.
fn ambient_state(t: &[Token], i: usize) -> Option<String> {
    let path2 = |a: &str, b: &str| {
        t[i].is_ident(a)
            && t.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && t.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && t.get(i + 3).is_some_and(|n| n.is_ident(b))
    };
    if path2("Instant", "now") {
        return Some(
            "`Instant::now` in the deterministic core; use simulated device time".to_string(),
        );
    }
    if t[i].is_ident("SystemTime") {
        return Some(
            "`SystemTime` in the deterministic core; use simulated device time".to_string(),
        );
    }
    if path2("thread", "spawn") {
        return Some(
            "`thread::spawn` in the deterministic core; scheduling must stay \
             single-threaded and seeded"
                .to_string(),
        );
    }
    if path2("std", "env") || path2("env", "var") {
        return Some(
            "`std::env` read in the deterministic core; configuration must flow \
             through explicit config structs"
                .to_string(),
        );
    }
    None
}

/// The enclosing statement of token `i`: back to the previous `;`/`{`/`}`
/// and forward to the next `;` or block `{`.
fn statement_bounds(t: &[Token], i: usize) -> (usize, usize) {
    let mut lo = i;
    while lo > 0 {
        if t[lo - 1].is_punct(';') || t[lo - 1].is_punct('{') || t[lo - 1].is_punct('}') {
            break;
        }
        lo -= 1;
    }
    let mut hi = i;
    let mut depth = 0i32;
    while hi < t.len() {
        match &t[hi].tok {
            crate::lexer::Tok::Punct('(' | '[') => depth += 1,
            crate::lexer::Tok::Punct(')' | ']') => depth -= 1,
            crate::lexer::Tok::Punct(';') if depth <= 0 => break,
            crate::lexer::Tok::Punct('{') if depth <= 0 => break,
            _ => {}
        }
        hi += 1;
    }
    (lo, hi)
}
