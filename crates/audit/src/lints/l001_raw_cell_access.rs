//! L001 — raw flash cell state must not be touched outside `ipa-flash`.
//!
//! The paper's entire correctness story rests on one physical invariant:
//! ISPP programming may only pull bits `1 → 0`, and only
//! `ipa-flash`'s checked `program_*` APIs (`crates/flash/src/page.rs`)
//! enforce it. Any path that reads or mutates raw page bytes from outside
//! the flash crate bypasses that check. This lint forbids, in non-test
//! code of every other crate:
//!
//! * zero-argument `.main()` / `.oob()` calls — the raw cell views of
//!   `PageData` (the zero-argument requirement is the false-positive
//!   guard: `fn main()` definitions and unrelated `x.main(arg)` calls do
//!   not match);
//! * `.peek(` / `.peek_oob(` — the device's diagnostics backdoors, which
//!   bypass timing, statistics and the error model;
//! * any mention of `PageData`, and `use ipa_flash::...` imports of the
//!   raw `Chip` / `Block` / `BlockState` types.

use super::pat;
use super::Lint;
use crate::findings::{Finding, Severity};
use crate::Analysis;

/// See module docs.
pub struct RawCellAccess;

/// Raw types flagged only inside `use ipa_flash::...` trees — the bare
/// names are too generic to flag everywhere (`Block` is an ordinary word),
/// while `PageData` is distinctive enough to flag at any mention.
const RAW_IMPORT_TYPES: [&str; 3] = ["Chip", "Block", "BlockState"];

impl Lint for RawCellAccess {
    fn code(&self) -> &'static str {
        "L001"
    }
    fn name(&self) -> &'static str {
        "raw-cell-access"
    }
    fn description(&self) -> &'static str {
        "no Page::main/Page::oob/peek or raw chip state outside ipa-flash; \
         all cell mutations go through the ISPP-checked program_* APIs"
    }

    fn check(&self, cx: &Analysis<'_>, out: &mut Vec<Finding>) {
        let ws = cx.ws;
        for file in &ws.files {
            if file.krate == "flash" || file.krate == "audit" || file.test_file {
                continue;
            }
            let t = &file.tokens;
            let mut i = 0;
            while i < t.len() {
                if file.is_test(i) {
                    i += 1;
                    continue;
                }
                let hit: Option<String> = if pat::is_nullary_method(t, i, "main") {
                    Some(".main() raw page view".to_string())
                } else if pat::is_nullary_method(t, i, "oob") {
                    Some(".oob() raw page view".to_string())
                } else if pat::is_method_call(t, i, "peek") {
                    Some(".peek() device backdoor".to_string())
                } else if pat::is_method_call(t, i, "peek_oob") {
                    Some(".peek_oob() device backdoor".to_string())
                } else if t[i].is_ident("PageData") {
                    Some("raw page type `PageData`".to_string())
                } else {
                    imported_raw_type(t, i)
                };
                if let Some(what) = hit {
                    out.push(Finding {
                        code: "L001",
                        severity: Severity::Error,
                        file: file.path.clone(),
                        line: t[i].line,
                        message: format!(
                            "{what} accessed outside ipa-flash; cell state must flow through \
                             the ISPP-checked Page/FlashDevice program_* and read APIs"
                        ),
                    });
                }
                i += 1;
            }
        }
    }
}

/// At a `use` keyword: does the use tree import a raw chip-state type
/// from `ipa_flash`? Returns the offending description.
fn imported_raw_type(t: &[crate::lexer::Token], i: usize) -> Option<String> {
    if !t[i].is_ident("use") {
        return None;
    }
    // Only ipa_flash use-trees are interesting.
    let mut j = i + 1;
    let mut saw_flash = false;
    while j < t.len() && !t[j].is_punct(';') {
        if t[j].is_ident("ipa_flash") {
            saw_flash = true;
        } else if saw_flash {
            if let Some(id) = t[j].ident() {
                if RAW_IMPORT_TYPES.contains(&id) {
                    return Some(format!("`use ipa_flash::...::{id}` raw chip-state import"));
                }
            }
        }
        j += 1;
    }
    None
}
