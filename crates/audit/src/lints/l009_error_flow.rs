//! L009 — fallible results must not be silently swallowed.
//!
//! The fault-injection ladder (PR 4) only means something if every
//! injected failure surfaces: a `let _ = txn.abort();` turns a failed
//! abort into silence, defeating both the reliability ledger and the
//! recovery invariants. This lint flags three swallow shapes in non-test
//! code, each gated on the **call graph**: the discarded call must
//! resolve (by name, within the calling crate and its `use ipa_*`
//! imports) to at least one function whose signature returns a `Result`
//! (or a workspace error type) — discarding an infallible call is not a
//! finding.
//!
//! * `let _ = fallible(..);` — wholesale discard. A `?` anywhere in the
//!   statement exempts it (the error already propagates; only the Ok
//!   value is dropped).
//! * `fallible(..).ok();` as a statement — the `.ok()` exists solely to
//!   appease `#[must_use]`; the error is still silently gone.
//! * `if <..>.is_err() { }` with an **empty** arm — the error was
//!   noticed and then ignored.
//!
//! Genuinely-benign drops (best-effort cleanup on shutdown paths) take
//! `// audit:allow(L009, reason = ...)`.

use super::Lint;
use crate::callgraph::extract_calls;
use crate::findings::{Finding, Severity};
use crate::source::match_brace;
use crate::Analysis;

/// See module docs.
pub struct ErrorFlow;

impl Lint for ErrorFlow {
    fn code(&self) -> &'static str {
        "L009"
    }
    fn name(&self) -> &'static str {
        "error-flow"
    }
    fn description(&self) -> &'static str {
        "no swallowed Results (`let _ =`, bare `.ok();`, empty `is_err` arm) on \
         calls the call graph resolves to fallible workspace functions"
    }

    fn check(&self, cx: &Analysis<'_>, out: &mut Vec<Finding>) {
        for (fi, file) in cx.ws.files.iter().enumerate() {
            if file.krate == "audit" || file.test_file {
                continue;
            }
            let t = &file.tokens;
            for i in 0..t.len() {
                if file.is_test(i) {
                    continue;
                }
                if let Some((line, callee)) = let_underscore_discard(cx, fi, i) {
                    out.push(finding(
                        file.path.clone(),
                        line,
                        format!(
                            "`let _ =` discards the Result of fallible `{callee}`; handle \
                             the error, count it in stats, or annotate a deliberate drop \
                             with audit:allow(L009, ...)"
                        ),
                    ));
                }
                if let Some((line, callee)) = bare_ok_statement(cx, fi, i) {
                    out.push(finding(
                        file.path.clone(),
                        line,
                        format!(
                            "statement-level `.ok()` swallows the error of fallible \
                             `{callee}`; handle it or annotate with audit:allow(L009, ...)"
                        ),
                    ));
                }
                if let Some(line) = empty_is_err_arm(cx, fi, i) {
                    out.push(finding(
                        file.path.clone(),
                        line,
                        "`is_err()` checked and then ignored (empty arm); handle the \
                         error or annotate with audit:allow(L009, ...)"
                            .to_string(),
                    ));
                }
            }
        }
    }
}

fn finding(file: String, line: u32, message: String) -> Finding {
    Finding { code: "L009", severity: Severity::Error, file, line, message }
}

/// Does `t[from..to]` contain a call that resolves to a fallible
/// workspace function? Returns the first such callee name.
fn fallible_call_in(cx: &Analysis<'_>, fi: usize, from: usize, to: usize) -> Option<String> {
    let t = &cx.ws.files[fi].tokens;
    extract_calls(t, from, to.min(t.len()))
        .into_iter()
        .find(|c| cx.calls.callee_can_fail(cx.ws, &cx.items, fi, c))
        .map(|c| c.name)
}

/// `let _ = <expr>;` (no `?` in the statement) discarding a fallible
/// call. Returns `(line, callee)`.
fn let_underscore_discard(cx: &Analysis<'_>, fi: usize, i: usize) -> Option<(u32, String)> {
    let t = &cx.ws.files[fi].tokens;
    if !(t[i].is_ident("let")
        && t.get(i + 1).is_some_and(|n| n.is_ident("_"))
        && t.get(i + 2).is_some_and(|n| n.is_punct('=')))
    {
        return None;
    }
    // Not `let _ = ... else`-bindings or compound `_x` names: `_` is the
    // exact ident. Find the statement end at depth 0.
    let mut depth = 0i32;
    let mut j = i + 3;
    while j < t.len() {
        match &t[j].tok {
            crate::lexer::Tok::Punct('(' | '[' | '{') => depth += 1,
            crate::lexer::Tok::Punct(')' | ']' | '}') => depth -= 1,
            crate::lexer::Tok::Punct(';') if depth <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    if t[i + 3..j].iter().any(|tok| tok.is_punct('?')) {
        return None; // errors already propagate; only the Ok value is dropped
    }
    let callee = fallible_call_in(cx, fi, i + 3, j)?;
    Some((t[i].line, callee))
}

/// A statement ending in `.ok();` whose statement contains a fallible
/// call. Returns `(line, callee)`.
fn bare_ok_statement(cx: &Analysis<'_>, fi: usize, i: usize) -> Option<(u32, String)> {
    let t = &cx.ws.files[fi].tokens;
    if !(t[i].is_punct('.')
        && t.get(i + 1).is_some_and(|n| n.is_ident("ok"))
        && t.get(i + 2).is_some_and(|n| n.is_punct('('))
        && t.get(i + 3).is_some_and(|n| n.is_punct(')'))
        && t.get(i + 4).is_some_and(|n| n.is_punct(';')))
    {
        return None;
    }
    // Walk back to the statement start.
    let mut lo = i;
    while lo > 0 {
        if t[lo - 1].is_punct(';') || t[lo - 1].is_punct('{') || t[lo - 1].is_punct('}') {
            break;
        }
        lo -= 1;
    }
    // `let x = f().ok();` binds the Option — that is a *conversion*, not a
    // swallow; only bare statements match.
    if t[lo..i].iter().any(|tok| tok.is_ident("let")) {
        return None;
    }
    let callee = fallible_call_in(cx, fi, lo, i)?;
    Some((t[i + 1].line, callee))
}

/// `if <..>.is_err() { }` with an empty block. Gated on a fallible call
/// in the condition when one is present; a bare variable check with an
/// empty arm is flagged unconditionally (the Result was produced
/// somewhere and is being ignored here).
fn empty_is_err_arm(cx: &Analysis<'_>, fi: usize, i: usize) -> Option<u32> {
    let t = &cx.ws.files[fi].tokens;
    if !(t[i].is_punct('.')
        && t.get(i + 1).is_some_and(|n| n.is_ident("is_err"))
        && t.get(i + 2).is_some_and(|n| n.is_punct('('))
        && t.get(i + 3).is_some_and(|n| n.is_punct(')')))
    {
        return None;
    }
    // The arm: the next `{` must immediately close.
    let open = i + 4;
    if !t.get(open).is_some_and(|n| n.is_punct('{')) {
        return None;
    }
    if match_brace(t, open) != open + 2 {
        return None; // non-empty arm: the error is handled somehow
    }
    // Require an enclosing `if` in the same statement.
    let mut lo = i;
    let mut saw_if = false;
    while lo > 0 {
        if t[lo - 1].is_punct(';') || t[lo - 1].is_punct('{') || t[lo - 1].is_punct('}') {
            break;
        }
        lo -= 1;
        if t[lo].is_ident("if") {
            saw_if = true;
        }
    }
    if !saw_if {
        return None;
    }
    // If the condition contains calls, at least one must be fallible.
    let calls = extract_calls(t, lo, i);
    let has_relevant =
        calls.is_empty() || calls.iter().any(|c| cx.calls.callee_can_fail(cx.ws, &cx.items, fi, c));
    has_relevant.then_some(t[i + 1].line)
}
