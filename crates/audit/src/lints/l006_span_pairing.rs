//! L006 — every opened trace span must be closed on all exit paths.
//!
//! The causal-tracing API (`open_span` / `open_span_under` -> `SpanId`,
//! then `close_span`) can leak spans: a function that opens a span but
//! never closes it leaves the span on the device's span stack forever, so
//! every later I/O is mis-attributed to the leaked span and the offline
//! analyzer reports the transaction as unclosed. This lint requires that
//! every non-test function containing an `open_span` / `open_span_under`
//! call satisfies one of:
//!
//! * it also calls `close_span` — the single-exit shape
//!   (`let r = inner(); close_span(id); r`) the live call sites use;
//! * its own name starts with `open` or `begin` — it *is* the
//!   producer-side API, deferring the close to its caller by convention
//!   (e.g. `Database::begin` opens the transaction span that `commit` /
//!   `abort` close);
//! * `SpanId` appears in its signature — it hands the span id back to the
//!   caller, who owns the close.
//!
//! Like L004 this is a per-function token heuristic, not a CFG analysis:
//! an early `return` between open and close escapes it, but it pins the
//! repo-wide convention that span open/close responsibilities are never
//! silently split across unrelated functions.

use super::Lint;
use crate::findings::{Finding, Severity};
use crate::workspace::Workspace;

/// See module docs.
pub struct SpanPairing;

impl Lint for SpanPairing {
    fn code(&self) -> &'static str {
        "L006"
    }
    fn name(&self) -> &'static str {
        "span-pairing"
    }
    fn description(&self) -> &'static str {
        "every open_span/open_span_under call is paired with close_span in the \
         same function, or the function visibly defers the close \
         (open*/begin* name, SpanId in signature)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if file.krate == "audit" || file.test_file {
                continue;
            }
            let t = &file.tokens;
            for f in file.functions() {
                if file.is_test(f.body.0) {
                    continue;
                }
                if f.name.starts_with("open") || f.name.starts_with("begin") {
                    continue;
                }
                let body = &t[f.body.0..f.body.1];
                let Some(open_tok) = body.iter().zip(body.iter().skip(1)).find_map(|(a, b)| {
                    let id = a.ident()?;
                    let is_open = id == "open_span" || id == "open_span_under";
                    (is_open && b.is_punct('(')).then_some(a)
                }) else {
                    continue;
                };
                let sig = &t[f.sig.0..f.sig.1];
                if sig.iter().any(|tok| tok.is_ident("SpanId")) {
                    continue;
                }
                if body.iter().any(|tok| tok.is_ident("close_span")) {
                    continue;
                }
                out.push(Finding {
                    code: "L006",
                    severity: Severity::Error,
                    file: file.path.clone(),
                    line: open_tok.line,
                    message: format!(
                        "fn `{}` opens a trace span but never closes it; pair the \
                         open_span with close_span, return the SpanId, or rename to \
                         open_*/begin_* to defer the close to the caller",
                        f.name
                    ),
                });
            }
        }
    }
}
