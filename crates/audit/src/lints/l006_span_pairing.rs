//! L006 — every opened trace span must be closed on all exit paths.
//!
//! The causal-tracing API (`open_span` / `open_span_under` -> `SpanId`,
//! then `close_span`) can leak spans: a function that opens a span but
//! never closes it leaves the span on the device's span stack forever, so
//! every later I/O is mis-attributed to the leaked span and the offline
//! analyzer reports the transaction as unclosed. This lint requires that
//! every `open_span` / `open_span_under` call site in non-test code
//! satisfies one of:
//!
//! * every path from the open reaches `close_span` before the function
//!   can exit — checked over the per-function CFG skeleton
//!   ([`crate::cfg`]), so an early `return` / `?` between open and close,
//!   or a close on only one branch arm, is a finding even when the
//!   `close_span` call is textually present;
//! * the enclosing function's name starts with `open` or `begin` — it
//!   *is* the producer-side API, deferring the close to its caller by
//!   convention (e.g. `Database::begin` opens the transaction span that
//!   `commit` / `abort` close);
//! * `SpanId` appears in its signature — it hands the span id back to the
//!   caller, who owns the close.
//!
//! The opening statement itself is outside the checked window: a `?` on
//! `let sp = obs.open_span(..)?;` is not a leak (the open failed — there
//! is nothing to close).

use super::Lint;
use crate::cfg::{self, Outcome};
use crate::findings::{Finding, Severity};
use crate::lexer::Token;
use crate::Analysis;

/// See module docs.
pub struct SpanPairing;

impl Lint for SpanPairing {
    fn code(&self) -> &'static str {
        "L006"
    }
    fn name(&self) -> &'static str {
        "span-pairing"
    }
    fn description(&self) -> &'static str {
        "every open_span/open_span_under call reaches close_span on all CFG \
         paths of its function, or the function visibly defers the close \
         (open*/begin* name, SpanId in signature)"
    }

    fn check(&self, cx: &Analysis<'_>, out: &mut Vec<Finding>) {
        let is_close = |tok: &Token| tok.is_ident("close_span");
        for (fi, file) in cx.ws.files.iter().enumerate() {
            if file.krate == "audit" || file.test_file {
                continue;
            }
            let t = &file.tokens;
            for (_, f) in cx.items.fns_of_file(fi) {
                if file.is_test(f.body.0) {
                    continue;
                }
                if f.name.starts_with("open") || f.name.starts_with("begin") {
                    continue;
                }
                let sites: Vec<usize> = (f.body.0..f.body.1.min(t.len()))
                    .filter(|&i| {
                        t[i].ident().is_some_and(|id| id == "open_span" || id == "open_span_under")
                            && t.get(i + 1).is_some_and(|n| n.is_punct('('))
                    })
                    .collect();
                if sites.is_empty() {
                    continue;
                }
                if t[f.sig.0..f.sig.1].iter().any(|tok| tok.is_ident("SpanId")) {
                    continue;
                }
                let nodes = cfg::build(t, f.body.0, f.body.1);
                for site in sites {
                    let outcome =
                        cfg::outcome_after(&nodes, t, site, &is_close).unwrap_or(Outcome::Open);
                    if let Some(why) = describe_leak(outcome) {
                        out.push(Finding {
                            code: "L006",
                            severity: Severity::Error,
                            file: file.path.clone(),
                            line: t[site].line,
                            message: format!(
                                "fn `{}` opens a trace span but {why}; pair the open_span \
                                 with close_span on every path, return the SpanId, or \
                                 rename to open_*/begin_* to defer the close to the caller",
                                f.name
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Human phrasing for a non-Closed outcome; `None` when the path is fine.
fn describe_leak(outcome: Outcome) -> Option<String> {
    match outcome {
        Outcome::Closed => None,
        Outcome::Open => Some("never closes it".to_string()),
        Outcome::Leak(line) => {
            Some(format!("an early exit (`return`/`?`) at line {line} can leak it"))
        }
        Outcome::Partial => Some("closes it only on some paths".to_string()),
    }
}
