//! L010 — observability must keep parity with what the core emits.
//!
//! Two cross-file consistency checks that `rustc` cannot express:
//!
//! * **event parity** — every `EventKind` variant declared in the flash
//!   crate's obs module must be handled (named) in the obs crate's JSONL
//!   writer (`obs/src/jsonl.rs`). A variant the writer does not know is
//!   an event that silently vanishes from every trace. (The writer's
//!   `match` has no wildcard arm by convention, but a wildcard would
//!   compile — this lint is what actually pins the parity.)
//! * **counter parity** — every stats counter bumped (`.field += ..`) in
//!   flash/noftl/engine non-test code, on a struct whose name marks it as
//!   a measurement type (`*Stats` / `*Counters`) **exported to the
//!   snapshot layer** (the struct's name appears in `obs/src/snapshot.rs`),
//!   must itself appear as a field in the snapshot rendering. A bumped
//!   but never-rendered counter is work the observability layer throws
//!   away.
//!
//! Structs the snapshot layer never mentions (crate-private bookkeeping
//! like the hybrid policy's internal tallies) are exempt wholesale: the
//! contract is "what the snapshot exports is complete", not "everything
//! must be exported". Files are located by suffix, so the fixture
//! mini-workspace exercises the same paths as the live tree.

use std::collections::BTreeSet;

use super::Lint;
use crate::findings::{Finding, Severity};
use crate::source::SourceFile;
use crate::Analysis;

/// See module docs.
pub struct ObsParity;

/// Crates whose emissions are checked.
const CORE_CRATES: [&str; 3] = ["flash", "noftl", "engine"];

impl Lint for ObsParity {
    fn code(&self) -> &'static str {
        "L010"
    }
    fn name(&self) -> &'static str {
        "obs-parity"
    }
    fn description(&self) -> &'static str {
        "every EventKind variant is handled in obs jsonl; every snapshot-exported \
         stats counter bumped in flash/noftl/engine appears in the snapshot \
         rendering"
    }

    fn check(&self, cx: &Analysis<'_>, out: &mut Vec<Finding>) {
        check_event_parity(cx, out);
        check_counter_parity(cx, out);
    }
}

/// Idents present in the first obs-crate file whose path ends with
/// `suffix` (`None` when the sink does not exist — mini-workspaces).
fn sink_idents<'a>(
    cx: &'a Analysis<'_>,
    suffix: &str,
) -> Option<(&'a SourceFile, BTreeSet<&'a str>)> {
    let file = cx.ws.files.iter().find(|f| f.krate == "obs" && f.path.ends_with(suffix))?;
    Some((file, file.tokens.iter().filter_map(|t| t.ident()).collect()))
}

/// Every `EventKind` variant in the flash crate must be named in
/// `obs/src/jsonl.rs`.
fn check_event_parity(cx: &Analysis<'_>, out: &mut Vec<Finding>) {
    let Some((_, handled)) = sink_idents(cx, "src/jsonl.rs") else { return };
    for (fi, e) in cx.items.enums_in_crate("flash") {
        if e.name != "EventKind" {
            continue;
        }
        let file = &cx.ws.files[fi];
        for (variant, line) in &e.variants {
            if !handled.contains(variant.as_str()) {
                out.push(Finding {
                    code: "L010",
                    severity: Severity::Error,
                    file: file.path.clone(),
                    line: *line,
                    message: format!(
                        "EventKind::{variant} is never handled in obs/src/jsonl.rs; \
                         events of this kind vanish from every trace — add it to the \
                         JSONL writer"
                    ),
                });
            }
        }
    }
}

/// Every `.field += ..` bump on a snapshot-exported measurement struct
/// must have `field` present in `obs/src/snapshot.rs`.
fn check_counter_parity(cx: &Analysis<'_>, out: &mut Vec<Finding>) {
    let Some((_, exported)) = sink_idents(cx, "src/snapshot.rs") else { return };
    for file in &cx.ws.files {
        if !CORE_CRATES.contains(&file.krate.as_str()) || file.test_file {
            continue;
        }
        let t = &file.tokens;
        for i in 0..t.len() {
            if file.is_test(i) {
                continue;
            }
            // `. field + =` — a compound bump on a field access.
            if !(t[i].is_punct('.')
                && t.get(i + 1).and_then(|n| n.ident()).is_some()
                && t.get(i + 2).is_some_and(|n| n.is_punct('+'))
                && t.get(i + 3).is_some_and(|n| n.is_punct('=')))
            {
                continue;
            }
            let field = t[i + 1].ident().unwrap_or_default();
            // Owner: a measurement struct in the same crate declaring this
            // field, itself exported to the snapshot layer.
            let Some(owners) = cx.items.field_owners.get(field) else { continue };
            let exported_owner = owners.iter().find(|(krate, sname)| {
                krate == &file.krate
                    && (sname.ends_with("Stats") || sname.ends_with("Counters"))
                    && exported.contains(sname.as_str())
            });
            let Some((_, owner)) = exported_owner else { continue };
            if !exported.contains(field) {
                out.push(Finding {
                    code: "L010",
                    severity: Severity::Error,
                    file: file.path.clone(),
                    line: t[i + 1].line,
                    message: format!(
                        "counter `{owner}.{field}` is bumped here but never appears in \
                         obs/src/snapshot.rs; the measurement is thrown away — add it \
                         to the snapshot rendering"
                    ),
                });
            }
        }
    }
}
