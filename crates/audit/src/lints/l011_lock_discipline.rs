//! L011 — lock acquisition goes through the wait-die front door.
//!
//! The engine's `LockManager` implements NoWait/WaitDie deadlock
//! avoidance; its correctness argument assumes (a) every acquire flows
//! through `Database`'s transaction paths (which consult the policy and
//! record the hold in `by_tx`), and (b) nothing re-enters the lock
//! manager while its tables are mid-update. Three violations, found via
//! the call graph:
//!
//! * **outside reach** — a `lock(..)` call on a lock-manager receiver
//!   (`.locks.lock(..)` / `LockManager::lock(..)`) from any crate other
//!   than `ipa-engine`: the manager is an engine-internal mechanism; a
//!   foreign acquire bypasses transaction accounting entirely.
//! * **side-door acquire** — inside the engine, the same call from a
//!   function that is neither a `Database` nor a `LockManager` method:
//!   wait-die ordering is enforced by the `Database` wrappers, so a
//!   free-function or helper-impl acquire bypasses it.
//! * **re-entrancy** — a function reachable (call graph) from
//!   `LockManager::lock` that calls back into `lock` / `release_all`:
//!   the lock table borrow is live across the whole acquire path, so a
//!   re-entrant call is at best a logic error and at worst an aliasing
//!   panic.
//!
//! Test code is exempt (tests drive the manager directly on purpose).

use super::Lint;
use crate::findings::{Finding, Severity};
use crate::itemgraph::FnId;
use crate::Analysis;

/// See module docs.
pub struct LockDiscipline;

/// Does this call target the lock manager? Either through a receiver
/// chain ending at a `locks` field or a `LockManager::` qualified path.
fn targets_lock_manager(call: &crate::callgraph::Call) -> bool {
    call.receiver.last().is_some_and(|r| r == "locks")
        || call.qualifier.as_deref() == Some("LockManager")
}

impl Lint for LockDiscipline {
    fn code(&self) -> &'static str {
        "L011"
    }
    fn name(&self) -> &'static str {
        "lock-discipline"
    }
    fn description(&self) -> &'static str {
        "LockManager acquires only from Database/LockManager methods inside \
         ipa-engine, and never re-entrantly from the acquire path itself"
    }

    fn check(&self, cx: &Analysis<'_>, out: &mut Vec<Finding>) {
        let t_of = |id: FnId| &cx.ws.files[id.0];
        // Rules 1 + 2: direct acquires in the wrong place.
        for (id, f) in cx.items.all_fns() {
            let file = t_of(id);
            if file.krate == "audit" || file.test_file || file.is_test(f.body.0) {
                continue;
            }
            for call in cx.calls.calls_of(id) {
                if call.name != "lock" || !targets_lock_manager(call) {
                    continue;
                }
                if file.krate != "engine" {
                    out.push(Finding {
                        code: "L011",
                        severity: Severity::Error,
                        file: file.path.clone(),
                        line: call.line,
                        message: format!(
                            "fn `{}` acquires through the engine's LockManager from \
                             crate `{}`; locking is engine-internal — go through the \
                             transaction API",
                            f.name, file.krate
                        ),
                    });
                } else if !matches!(f.impl_of.as_deref(), Some("Database" | "LockManager")) {
                    out.push(Finding {
                        code: "L011",
                        severity: Severity::Error,
                        file: file.path.clone(),
                        line: call.line,
                        message: format!(
                            "fn `{}` acquires through the LockManager outside the \
                             Database/LockManager methods; this bypasses wait-die \
                             ordering and transaction lock accounting",
                            f.name
                        ),
                    });
                }
            }
        }
        // Rule 3: re-entrancy from the acquire path.
        let roots: Vec<FnId> = cx
            .items
            .all_fns()
            .filter(|(_, f)| f.name == "lock" && f.impl_of.as_deref() == Some("LockManager"))
            .map(|(id, _)| id)
            .collect();
        if roots.is_empty() {
            return;
        }
        let reach = cx.calls.reachable(cx.ws, &cx.items, &roots);
        for id in reach {
            if roots.contains(&id) {
                continue;
            }
            let file = t_of(id);
            if file.krate != "engine" || file.test_file {
                continue;
            }
            let f = cx.items.fn_item(id);
            if file.is_test(f.body.0) {
                continue;
            }
            for call in cx.calls.calls_of(id) {
                let re_enters = (call.name == "lock" || call.name == "release_all")
                    && (targets_lock_manager(call)
                        || call.receiver.last().is_some_and(|r| r == "self"));
                if re_enters {
                    out.push(Finding {
                        code: "L011",
                        severity: Severity::Error,
                        file: file.path.clone(),
                        line: call.line,
                        message: format!(
                            "fn `{}` is reachable from LockManager::lock and calls \
                             `{}` — re-entering the lock manager while the lock table \
                             is borrowed",
                            f.name, call.name
                        ),
                    });
                }
            }
        }
    }
}
