//! L005 — measurement types must be `#[must_use]`.
//!
//! The observability story (PR 1) only works if callers cannot silently
//! drop a snapshot or a stats delta they asked for — a discarded
//! `FlashStats` or `Snapshot` is almost always a bug (the caller paid for
//! the aggregation and then measured nothing). Every *public* struct or
//! enum in `obs` / `flash` / `noftl` whose name ends in one of the
//! measurement suffixes (`Stats`, `Snapshot`, `Counters`, `Gauges`,
//! `Histogram`, `Delta`) must therefore carry `#[must_use]`.
//!
//! Private types are exempt (the compiler already sees every use site),
//! as is test code.

use super::Lint;
use crate::findings::{Finding, Severity};
use crate::lexer::Token;
use crate::Analysis;

/// See module docs.
pub struct MustUse;

/// Crates whose measurement types are part of the public surface.
const MEASURED_CRATES: [&str; 3] = ["obs", "flash", "noftl"];

/// Name suffixes identifying a measurement type.
const SUFFIXES: [&str; 6] = ["Stats", "Snapshot", "Counters", "Gauges", "Histogram", "Delta"];

impl Lint for MustUse {
    fn code(&self) -> &'static str {
        "L005"
    }
    fn name(&self) -> &'static str {
        "must-use-measurements"
    }
    fn description(&self) -> &'static str {
        "public *Stats/*Snapshot/*Counters/*Gauges/*Histogram/*Delta types in \
         obs/flash/noftl carry #[must_use]"
    }

    fn check(&self, cx: &Analysis<'_>, out: &mut Vec<Finding>) {
        let ws = cx.ws;
        for file in &ws.files {
            if !MEASURED_CRATES.contains(&file.krate.as_str()) || file.test_file {
                continue;
            }
            let t = &file.tokens;
            for i in 0..t.len() {
                if file.is_test(i) {
                    continue;
                }
                if !(t[i].is_ident("struct") || t[i].is_ident("enum")) {
                    continue;
                }
                let Some(name) = t.get(i + 1).and_then(|tok| tok.ident()) else { continue };
                if !SUFFIXES.iter().any(|s| name.ends_with(s)) {
                    continue;
                }
                let Some(vis_start) = pub_start(t, i) else { continue };
                if !has_must_use(t, vis_start) {
                    out.push(Finding {
                        code: "L005",
                        severity: Severity::Error,
                        file: file.path.clone(),
                        line: t[i].line,
                        message: format!(
                            "public measurement type `{name}` lacks #[must_use]; a silently \
                             dropped stats/snapshot value defeats the observability contract"
                        ),
                    });
                }
            }
        }
    }
}

/// If the `struct`/`enum` keyword at `i` is public, return the index of
/// its `pub` token; `None` for private items (exempt).
fn pub_start(t: &[Token], i: usize) -> Option<usize> {
    let mut k = i.checked_sub(1)?;
    // Skip a `(crate)` / `(super)` / `(in path)` restriction.
    if t[k].is_punct(')') {
        let mut depth = 1usize;
        while depth > 0 {
            k = k.checked_sub(1)?;
            if t[k].is_punct(')') {
                depth += 1;
            } else if t[k].is_punct('(') {
                depth -= 1;
            }
        }
        k = k.checked_sub(1)?;
    }
    t[k].is_ident("pub").then_some(k)
}

/// Scan the attribute groups immediately preceding token `start`
/// (`#[...]`, possibly several) for a `must_use` ident.
fn has_must_use(t: &[Token], start: usize) -> bool {
    let mut end = start; // exclusive end of the attribute region scanned so far
    loop {
        let Some(close) = end.checked_sub(1) else { return false };
        if !t[close].is_punct(']') {
            return false;
        }
        // Find the matching `[` backwards.
        let mut depth = 1usize;
        let mut k = close;
        while depth > 0 {
            let Some(prev) = k.checked_sub(1) else { return false };
            k = prev;
            if t[k].is_punct(']') {
                depth += 1;
            } else if t[k].is_punct('[') {
                depth -= 1;
            }
        }
        let Some(hash) = k.checked_sub(1) else { return false };
        if !t[hash].is_punct('#') {
            return false;
        }
        if t[k..close].iter().any(|tok| tok.is_ident("must_use")) {
            return true;
        }
        end = hash;
    }
}
