//! The pluggable lint set.
//!
//! Each lint is a [`Lint`] implementation over the semantic
//! [`Analysis`] context — the lexed workspace plus the item graph and
//! call graph built over it. Adding a lint means adding a module here,
//! implementing the trait, and registering it in [`all`] — see DESIGN.md
//! ("Static analysis & invariant lints") for the catalog and the
//! conventions a lint must follow (token stream only, test code exempt,
//! findings must name file and line).

use crate::findings::Finding;
use crate::Analysis;

mod l001_raw_cell_access;
mod l002_no_panic;
mod l003_layering;
mod l004_queue_pairing;
mod l005_must_use;
mod l006_span_pairing;
mod l007_tx_discipline;
mod l008_determinism;
mod l009_error_flow;
mod l010_obs_parity;
mod l011_lock_discipline;

pub use l001_raw_cell_access::RawCellAccess;
pub use l002_no_panic::NoPanic;
pub use l003_layering::Layering;
pub use l004_queue_pairing::QueuePairing;
pub use l005_must_use::MustUse;
pub use l006_span_pairing::SpanPairing;
pub use l007_tx_discipline::TxDiscipline;
pub use l008_determinism::Determinism;
pub use l009_error_flow::ErrorFlow;
pub use l010_obs_parity::ObsParity;
pub use l011_lock_discipline::LockDiscipline;

/// One audit lint.
pub trait Lint {
    /// Stable code (`L001` ...), the pragma and report key.
    fn code(&self) -> &'static str;
    /// Short kebab-case name.
    fn name(&self) -> &'static str;
    /// One-line description for `ipa-audit lints`.
    fn description(&self) -> &'static str;
    /// Run over the analyzed workspace, appending findings.
    fn check(&self, cx: &Analysis<'_>, out: &mut Vec<Finding>);
}

/// The registered lint set, in code order.
pub fn all() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(RawCellAccess),
        Box::new(NoPanic),
        Box::new(Layering),
        Box::new(QueuePairing),
        Box::new(MustUse),
        Box::new(SpanPairing),
        Box::new(TxDiscipline),
        Box::new(Determinism),
        Box::new(ErrorFlow),
        Box::new(ObsParity),
        Box::new(LockDiscipline),
    ]
}

/// Shared token-pattern helpers.
pub(crate) mod pat {
    use crate::lexer::Token;

    /// `t[i..]` starts with `.name()` (a zero-argument method call).
    pub fn is_nullary_method(t: &[Token], i: usize, name: &str) -> bool {
        i + 3 < t.len()
            && t[i].is_punct('.')
            && t[i + 1].is_ident(name)
            && t[i + 2].is_punct('(')
            && t[i + 3].is_punct(')')
    }

    /// `t[i..]` starts with `.name(` (a method call with any arguments).
    pub fn is_method_call(t: &[Token], i: usize, name: &str) -> bool {
        i + 2 < t.len() && t[i].is_punct('.') && t[i + 1].is_ident(name) && t[i + 2].is_punct('(')
    }

    /// `t[i..]` starts with `name!` (a macro invocation).
    pub fn is_macro(t: &[Token], i: usize, name: &str) -> bool {
        i + 1 < t.len() && t[i].is_ident(name) && t[i + 1].is_punct('!')
    }
}
