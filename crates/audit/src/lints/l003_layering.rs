//! L003 — the crate layering must match the architecture diagram.
//!
//! The stack is strictly layered (DESIGN.md):
//!
//! ```text
//!   engine  ──►  noftl  ──►  flash
//!     │
//!     └──►  core          (dependency-free domain types)
//! ```
//!
//! Concretely:
//!
//! * `flash` is the bottom layer — no in-workspace dependencies;
//! * `noftl` may depend only on `ipa-flash` in-workspace;
//! * `engine` must **never** reach `ipa-flash` directly — every device
//!   interaction goes through `ipa-noftl` (which re-exports the shared
//!   vocabulary types: `CmdId`, `Completion`, `FlashConfig`, observer
//!   hooks);
//! * `core` depends on nothing in-workspace.
//!
//! Cross-cutting crates (`obs`, `workloads`, `bench`, `ipl`, the `ipa`
//! facade) sit above the stack and are unconstrained. The lint checks both
//! the manifests (`[dependencies]` keys; `[dev-dependencies]` are exempt —
//! tests may reach anywhere) and the source token streams (any `ipa_*`
//! crate ident in non-test code).

use super::Lint;
use crate::findings::{Finding, Severity};
use crate::Analysis;

/// See module docs.
pub struct Layering;

/// All in-workspace crate idents as they appear in source.
const WORKSPACE_IDENTS: [&str; 9] = [
    "ipa_flash",
    "ipa_noftl",
    "ipa_core",
    "ipa_engine",
    "ipa_obs",
    "ipa_ipl",
    "ipa_workloads",
    "ipa_bench",
    "ipa_audit",
];

/// `(crate, allowed in-workspace source idents)` for the constrained
/// layers. Crates not listed are unconstrained.
const SOURCE_RULES: [(&str, &[&str]); 4] = [
    ("flash", &[]),
    ("noftl", &["ipa_flash"]),
    ("engine", &["ipa_noftl", "ipa_core"]),
    ("core", &[]),
];

/// `(crate, allowed in-workspace manifest deps)` for the constrained
/// layers.
const MANIFEST_RULES: [(&str, &[&str]); 4] = [
    ("flash", &[]),
    ("noftl", &["ipa-flash"]),
    ("engine", &["ipa-noftl", "ipa-core"]),
    ("core", &[]),
];

impl Lint for Layering {
    fn code(&self) -> &'static str {
        "L003"
    }
    fn name(&self) -> &'static str {
        "layering"
    }
    fn description(&self) -> &'static str {
        "engine -> noftl -> flash strict layering: engine never reaches ipa-flash \
         directly, core/flash depend on nothing in-workspace"
    }

    fn check(&self, cx: &Analysis<'_>, out: &mut Vec<Finding>) {
        let ws = cx.ws;
        for m in &ws.manifests {
            let Some((_, allowed)) = MANIFEST_RULES.iter().find(|(k, _)| *k == m.krate) else {
                continue;
            };
            for (dep, line) in &m.deps {
                if dep.starts_with("ipa-") && !allowed.contains(&dep.as_str()) {
                    out.push(Finding {
                        code: "L003",
                        severity: Severity::Error,
                        file: m.path.clone(),
                        line: *line,
                        message: format!(
                            "layering violation: `{}` must not depend on `{dep}` \
                             (allowed in-workspace deps: {})",
                            m.krate,
                            fmt_allowed(allowed)
                        ),
                    });
                }
            }
        }
        for file in &ws.files {
            let Some((_, allowed)) = SOURCE_RULES.iter().find(|(k, _)| *k == file.krate) else {
                continue;
            };
            if file.test_file {
                continue;
            }
            let t = &file.tokens;
            for (i, tok) in t.iter().enumerate() {
                if file.is_test(i) {
                    continue;
                }
                let Some(id) = tok.ident() else { continue };
                if WORKSPACE_IDENTS.contains(&id) && !allowed.contains(&id) {
                    out.push(Finding {
                        code: "L003",
                        severity: Severity::Error,
                        file: file.path.clone(),
                        line: tok.line,
                        message: format!(
                            "layering violation: `{}` code references `{id}` \
                             (allowed in-workspace crates: {})",
                            file.krate,
                            fmt_allowed(allowed)
                        ),
                    });
                }
            }
        }
    }
}

fn fmt_allowed(allowed: &[&str]) -> String {
    if allowed.is_empty() {
        "none".to_string()
    } else {
        allowed.join(", ")
    }
}
