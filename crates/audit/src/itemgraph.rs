//! Item graph: the workspace's crates → files → items, indexed for the
//! semantic lints.
//!
//! Built once per audit from [`crate::parse::parse_file`] output; the
//! call graph ([`crate::callgraph`]) and the semantic lints (L008–L011)
//! query it instead of re-walking token streams. All indices use
//! `BTreeMap` so every traversal order is deterministic — the audit's own
//! report must be byte-stable across runs (the same property L008
//! enforces on the engine).

use std::collections::BTreeMap;

use crate::parse::{parse_file, FileItems, ParsedEnum, ParsedFn, ParsedStruct};
use crate::workspace::Workspace;

/// Stable identifier of a function item: `(file index, fn index)` into
/// the workspace file list / that file's parsed fn list.
pub type FnId = (usize, usize);

/// Per-file parsed items plus the owning file index.
#[derive(Debug)]
pub struct FileNode {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Parsed items of that file.
    pub items: FileItems,
}

/// The workspace item graph.
#[derive(Debug, Default)]
pub struct ItemGraph {
    /// One node per workspace file, same order as [`Workspace::files`].
    pub files: Vec<FileNode>,
    /// crate name → indices of its files.
    pub by_crate: BTreeMap<String, Vec<usize>>,
    /// fn name → every function item with that name.
    pub fns_by_name: BTreeMap<String, Vec<FnId>>,
    /// struct field name → names of structs (with crate) declaring it:
    /// `field → [(crate, struct)]`.
    pub field_owners: BTreeMap<String, Vec<(String, String)>>,
}

impl ItemGraph {
    /// Parse every workspace file and build the indices.
    pub fn build(ws: &Workspace) -> ItemGraph {
        let mut graph = ItemGraph::default();
        for (fi, file) in ws.files.iter().enumerate() {
            let items = parse_file(file);
            graph.by_crate.entry(file.krate.clone()).or_default().push(fi);
            for (ni, f) in items.fns.iter().enumerate() {
                graph.fns_by_name.entry(f.name.clone()).or_default().push((fi, ni));
            }
            for s in &items.structs {
                for field in &s.fields {
                    graph
                        .field_owners
                        .entry(field.clone())
                        .or_default()
                        .push((file.krate.clone(), s.name.clone()));
                }
            }
            graph.files.push(FileNode { file: fi, items });
        }
        graph
    }

    /// The function item for an id.
    pub fn fn_item(&self, id: FnId) -> &ParsedFn {
        &self.files[id.0].items.fns[id.1]
    }

    /// All function items of one file, with ids.
    pub fn fns_of_file(&self, file: usize) -> impl Iterator<Item = (FnId, &ParsedFn)> {
        self.files[file].items.fns.iter().enumerate().map(move |(ni, f)| ((file, ni), f))
    }

    /// Every function item in the workspace, in deterministic
    /// (file, declaration) order.
    pub fn all_fns(&self) -> impl Iterator<Item = (FnId, &ParsedFn)> {
        self.files.iter().flat_map(|node| {
            node.items.fns.iter().enumerate().map(move |(ni, f)| ((node.file, ni), f))
        })
    }

    /// The innermost function item whose body covers token `idx` of file
    /// `file` (bodies nest; the latest-starting match is innermost).
    pub fn enclosing_fn(&self, file: usize, idx: usize) -> Option<FnId> {
        self.files[file]
            .items
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.sig.0 <= idx && idx < f.body.1)
            .max_by_key(|(_, f)| f.sig.0)
            .map(|(ni, _)| (file, ni))
    }

    /// All enums named `name` in crate `krate`, with the declaring file.
    pub fn enums_in_crate<'g>(&'g self, krate: &str) -> Vec<(usize, &'g ParsedEnum)> {
        let Some(files) = self.by_crate.get(krate) else { return Vec::new() };
        files
            .iter()
            .flat_map(|&fi| self.files[fi].items.enums.iter().map(move |e| (fi, e)))
            .collect()
    }

    /// All structs declared in crate `krate`, with the declaring file.
    pub fn structs_in_crate<'g>(&'g self, krate: &str) -> Vec<(usize, &'g ParsedStruct)> {
        let Some(files) = self.by_crate.get(krate) else { return Vec::new() };
        files
            .iter()
            .flat_map(|&fi| self.files[fi].items.structs.iter().map(move |s| (fi, s)))
            .collect()
    }

    /// Crates whose items are visible from `file` for name resolution:
    /// the file's own crate plus its `use ipa_*` imports.
    pub fn visible_crates(&self, ws: &Workspace, file: usize) -> Vec<String> {
        let mut crates = vec![ws.files[file].krate.clone()];
        crates.extend(self.files[file].items.imports.iter().cloned());
        crates.sort();
        crates.dedup();
        crates
    }
}
