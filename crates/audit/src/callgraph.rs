//! Intra-workspace call graph over the item graph.
//!
//! Calls are extracted per function body from the token stream: a plain
//! `name(`, a method `.name(` (with its receiver ident chain), or a
//! qualified `Type::name(`. Resolution is by name — within the calling
//! crate plus every sibling crate the file imports via `use ipa_*` —
//! which is deliberately over-approximate: for lint purposes a call is
//! *fallible* if **any** candidate with that name can return a `Result`,
//! and a path *reaches* the lock manager if any candidate chain does.
//! Over-approximation errs toward reporting, and the pragma layer absorbs
//! the rare deliberate exception.

use std::collections::{BTreeMap, BTreeSet};

use crate::itemgraph::{FnId, ItemGraph};
use crate::lexer::{Tok, Token};
use crate::workspace::Workspace;

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (`abort`, `lock`, `submit_read`, ...).
    pub name: String,
    /// 1-indexed source line of the callee token.
    pub line: u32,
    /// Token index of the callee ident in the file's stream.
    pub tok: usize,
    /// Receiver ident chain for method calls (`self.db.abort_tx(..)` →
    /// `["self", "db"]`); empty for plain calls.
    pub receiver: Vec<String>,
    /// Qualifying type for `Type::name(..)` calls.
    pub qualifier: Option<String>,
}

/// The workspace call graph: per-function call lists plus resolution.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Caller → its call sites, in body order.
    pub calls: BTreeMap<FnId, Vec<Call>>,
}

/// Keywords and control-flow idents that look like `name(` but are not
/// calls.
fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "fn"
            | "move"
            | "in"
            | "let"
            | "else"
            | "impl"
            | "where"
            | "as"
            | "ref"
            | "mut"
            | "pub"
            | "use"
            | "mod"
            | "box"
    )
}

impl CallGraph {
    /// Extract every call site of every function in the item graph.
    pub fn build(ws: &Workspace, items: &ItemGraph) -> CallGraph {
        let mut graph = CallGraph::default();
        for (id, f) in items.all_fns() {
            let t = &ws.files[id.0].tokens;
            graph.calls.insert(id, extract_calls(t, f.body.0, f.body.1));
        }
        graph
    }

    /// Call sites of one function (empty slice if unknown).
    pub fn calls_of(&self, id: FnId) -> &[Call] {
        self.calls.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Name-resolution candidates for a call made from `file`: every
    /// function with that name in the file's visible crates (own crate +
    /// `use ipa_*` imports). A `Type::name` qualifier narrows candidates
    /// to methods of that type when any exist.
    pub fn candidates(
        &self,
        ws: &Workspace,
        items: &ItemGraph,
        file: usize,
        call: &Call,
    ) -> Vec<FnId> {
        let visible = items.visible_crates(ws, file);
        let Some(ids) = items.fns_by_name.get(&call.name) else { return Vec::new() };
        let mut found: Vec<FnId> = ids
            .iter()
            .copied()
            .filter(|&(fi, _)| visible.iter().any(|k| *k == ws.files[fi].krate))
            .collect();
        if let Some(q) = &call.qualifier {
            let narrowed: Vec<FnId> = found
                .iter()
                .copied()
                .filter(|&id| items.fn_item(id).impl_of.as_deref() == Some(q.as_str()))
                .collect();
            if !narrowed.is_empty() {
                found = narrowed;
            }
        }
        found
    }

    /// Whether a call can fail: some candidate's signature returns a
    /// `Result` (or workspace error type).
    pub fn callee_can_fail(
        &self,
        ws: &Workspace,
        items: &ItemGraph,
        file: usize,
        call: &Call,
    ) -> bool {
        self.candidates(ws, items, file, call).iter().any(|&id| items.fn_item(id).returns_result)
    }

    /// Every function reachable from `roots` by resolving call names, the
    /// roots included. Deterministic BFS over `BTreeSet`.
    pub fn reachable(&self, ws: &Workspace, items: &ItemGraph, roots: &[FnId]) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = roots.iter().copied().collect();
        let mut queue: Vec<FnId> = roots.to_vec();
        while let Some(id) = queue.pop() {
            for call in self.calls_of(id) {
                for next in self.candidates(ws, items, id.0, call) {
                    if seen.insert(next) {
                        queue.push(next);
                    }
                }
            }
        }
        seen
    }
}

/// Scan `t[start..end]` for call sites.
pub fn extract_calls(t: &[Token], start: usize, end: usize) -> Vec<Call> {
    let mut out = Vec::new();
    for i in start..end.min(t.len()) {
        let Some(name) = t[i].ident() else { continue };
        if is_keyword(name) {
            continue;
        }
        // A call is `name` directly followed by `(` — macros (`name!(`)
        // and generic turbofish callees are naturally excluded; the
        // turbofish form `name::<T>(` is rare enough in this workspace
        // to ignore.
        if !t.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let mut call = Call {
            name: name.to_string(),
            line: t[i].line,
            tok: i,
            receiver: Vec::new(),
            qualifier: None,
        };
        if i >= 1 && t[i - 1].is_punct('.') {
            // Method call: walk the receiver chain backwards through
            // `ident . ident . ... .` (stopping at anything else).
            let mut j = i - 1;
            let mut chain = Vec::new();
            while j >= 1 {
                if !t[j].is_punct('.') {
                    break;
                }
                match &t[j - 1].tok {
                    Tok::Ident(id) => chain.push(id.clone()),
                    Tok::Punct(')') | Tok::Punct(']') => {
                        // Chained off a call/index result: receiver chain
                        // ends here (good enough for the lints).
                        break;
                    }
                    _ => break,
                }
                if j < 2 {
                    break;
                }
                j -= 2;
            }
            chain.reverse();
            call.receiver = chain;
        } else if i >= 3
            && t[i - 1].is_punct(':')
            && t[i - 2].is_punct(':')
            && t[i - 3].ident().is_some()
        {
            call.qualifier = t[i - 3].ident().map(str::to_string);
        }
        out.push(call);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn calls(src: &str) -> Vec<Call> {
        let l = lex(src);
        extract_calls(&l.tokens, 0, l.tokens.len())
    }

    #[test]
    fn plain_method_and_qualified_calls() {
        let c = calls("free(); self.db.abort_tx(id); LockManager::lock(a, b); vec![1].len();");
        let names: Vec<&str> = c.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["free", "abort_tx", "lock", "len"]);
        assert_eq!(c[1].receiver, vec!["self", "db"]);
        assert_eq!(c[2].qualifier.as_deref(), Some("LockManager"));
    }

    #[test]
    fn keywords_and_macros_are_not_calls() {
        let c = calls("if (x) { return (y); } assert!(z); println!(\"w\");");
        assert!(c.is_empty(), "got: {c:?}");
    }
}
