//! Workspace discovery: find every crate's sources and manifest.
//!
//! The auditor scans `crates/*/src/**/*.rs` plus the facade crate's
//! `src/**/*.rs`. Integration tests, benches and examples are *not*
//! scanned — every lint in the catalog exempts test code, so walking those
//! trees would only produce noise. Manifests (`crates/*/Cargo.toml`) are
//! parsed just deeply enough to extract the `[dependencies]` key list for
//! the layering lint.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::source::SourceFile;

/// A crate manifest reduced to what the lints need.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Workspace-relative path of the Cargo.toml.
    pub path: String,
    /// Short crate name (directory name under `crates/`).
    pub krate: String,
    /// `[dependencies]` keys with the 1-indexed line they appear on.
    pub deps: Vec<(String, u32)>,
}

/// Everything the lints operate on.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Lexed source files.
    pub files: Vec<SourceFile>,
    /// Crate manifests.
    pub manifests: Vec<Manifest>,
}

impl Workspace {
    /// Load the workspace rooted at `root`. Missing pieces (no facade
    /// `src/`, no `crates/`) are tolerated so the loader also works on
    /// fixture mini-workspaces.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut ws = Workspace::default();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect();
            crate_dirs.sort();
            for dir in crate_dirs {
                let krate =
                    dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
                let manifest = dir.join("Cargo.toml");
                if manifest.is_file() {
                    ws.manifests.push(parse_manifest(root, &manifest, &krate)?);
                }
                load_sources(root, &dir.join("src"), &krate, &mut ws.files)?;
            }
        }
        // The facade crate at the workspace root.
        load_sources(root, &root.join("src"), "ipa", &mut ws.files)?;
        Ok(ws)
    }
}

/// Recursively lex every `.rs` file under `dir` (if it exists).
fn load_sources(root: &Path, dir: &Path, krate: &str, out: &mut Vec<SourceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            load_sources(root, &path, krate, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src = fs::read_to_string(&path)?;
            out.push(SourceFile::parse(&rel(root, &path), krate, &src));
        }
    }
    Ok(())
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

/// Extract `[dependencies]` keys. Line-based: a section header line
/// (`[dependencies]`) opens the section, any other `[...]` header closes
/// it; inside, the key is everything before the first `.`, `=` or space.
fn parse_manifest(root: &Path, path: &Path, krate: &str) -> io::Result<Manifest> {
    let text = fs::read_to_string(path)?;
    let mut deps = Vec::new();
    let mut in_deps = false;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let key: String =
            line.chars().take_while(|c| !matches!(c, '.' | '=' | ' ' | '\t')).collect();
        if !key.is_empty() {
            deps.push((key, i as u32 + 1));
        }
    }
    Ok(Manifest { path: rel(root, path), krate: krate.to_string(), deps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_ws() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ipa-audit-ws-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/demo/src")).expect("mkdir");
        let mut m = fs::File::create(dir.join("crates/demo/Cargo.toml")).expect("manifest");
        writeln!(
            m,
            "[package]\nname = \"ipa-demo\"\n\n[dependencies]\nipa-flash.workspace = true\nserde = {{ version = \"1\" }}\n\n[dev-dependencies]\nproptest = \"1\""
        )
        .expect("write");
        fs::write(dir.join("crates/demo/src/lib.rs"), "fn a() {}\n").expect("src");
        dir
    }

    #[test]
    fn loads_crates_and_manifest_deps() {
        let root = tmp_ws();
        let ws = Workspace::load(&root).expect("load");
        assert_eq!(ws.files.len(), 1);
        assert_eq!(ws.files[0].krate, "demo");
        assert_eq!(ws.manifests.len(), 1);
        let deps: Vec<&str> = ws.manifests[0].deps.iter().map(|(d, _)| d.as_str()).collect();
        // Only [dependencies] — dev-dependencies are exempt (tests may
        // reach anywhere).
        assert_eq!(deps, vec!["ipa-flash", "serde"]);
        let _ = fs::remove_dir_all(&root);
    }
}
