//! Brace-tree item parser: from a flat token stream to per-file items.
//!
//! [`crate::source::SourceFile`] gives the lints a token stream;
//! this module walks that stream as a *brace tree* and recovers the item
//! structure the semantic lints need — functions with their enclosing
//! `impl`/`trait` type and module path, structs with field lists, enums
//! with variant lists, and `use` imports of sibling workspace crates.
//! [`crate::itemgraph`] aggregates the per-file results into the
//! workspace-wide item graph.
//!
//! Like the lexer, the parser is deliberately forgiving: it must never
//! fail on the code it audits (the compiler reports real syntax errors),
//! so unrecognized constructs are skipped token by token.

use crate::lexer::{Tok, Token};
use crate::source::{match_brace, SourceFile};

/// A parsed function item.
#[derive(Debug, Clone)]
pub struct ParsedFn {
    /// Function name.
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Enclosing `impl`/`trait` type name (`Database`, `LockManager`, ...),
    /// or `None` for free functions.
    pub impl_of: Option<String>,
    /// Enclosing inline-module path (`["tests"]`, ...), innermost last.
    pub mod_path: Vec<String>,
    /// Half-open token range of the signature (`fn` to the body `{`).
    pub sig: (usize, usize),
    /// Half-open token range of the body (`{` to past the matching `}`).
    pub body: (usize, usize),
    /// Whether the signature declares a `Result` (or a workspace error
    /// type) return — the call graph's fallibility bit.
    pub returns_result: bool,
}

/// A parsed struct with its named fields.
#[derive(Debug, Clone)]
pub struct ParsedStruct {
    /// Struct name.
    pub name: String,
    /// 1-indexed line of the `struct` keyword.
    pub line: u32,
    /// Named-field names (empty for tuple/unit structs).
    pub fields: Vec<String>,
}

/// A parsed enum with its variants.
#[derive(Debug, Clone)]
pub struct ParsedEnum {
    /// Enum name.
    pub name: String,
    /// 1-indexed line of the `enum` keyword.
    pub line: u32,
    /// Variants as `(name, line)`.
    pub variants: Vec<(String, u32)>,
}

/// Everything the item graph keeps for one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Function items, in source order (nested fns included).
    pub fns: Vec<ParsedFn>,
    /// Struct items.
    pub structs: Vec<ParsedStruct>,
    /// Enum items.
    pub enums: Vec<ParsedEnum>,
    /// Short names of sibling workspace crates imported via
    /// `use ipa_<name>::...` (deduplicated).
    pub imports: Vec<String>,
    /// Inline module names declared in the file.
    pub mods: Vec<String>,
}

/// Parse one file's token stream into its items.
pub fn parse_file(file: &SourceFile) -> FileItems {
    let mut items = FileItems::default();
    walk(&file.tokens, 0, file.tokens.len(), &mut Vec::new(), None, &mut items);
    items.imports.sort();
    items.imports.dedup();
    items
}

/// Recursive brace-tree walk of `t[start..end]`.
fn walk(
    t: &[Token],
    start: usize,
    end: usize,
    mod_path: &mut Vec<String>,
    impl_of: Option<&str>,
    out: &mut FileItems,
) {
    let mut i = start;
    while i < end {
        match t[i].ident() {
            Some("use") => i = parse_use(t, i, end, out),
            Some("mod") => i = parse_mod(t, i, end, mod_path, out),
            Some("impl") | Some("trait") => i = parse_impl(t, i, end, mod_path, out),
            Some("fn") => i = parse_fn(t, i, end, mod_path, impl_of, out),
            Some("struct") => i = parse_struct(t, i, end, out),
            Some("enum") => i = parse_enum(t, i, end, out),
            _ => i += 1,
        }
    }
}

/// `use ipa_flash::...;` — record the sibling-crate import edge.
fn parse_use(t: &[Token], i: usize, end: usize, out: &mut FileItems) -> usize {
    let mut j = i + 1;
    if let Some(first) = t.get(j).and_then(Token::ident) {
        if let Some(short) = first.strip_prefix("ipa_") {
            out.imports.push(short.to_string());
        } else if first == "ipa" {
            out.imports.push("ipa".to_string());
        }
    }
    while j < end && !t[j].is_punct(';') {
        j += 1;
    }
    j.min(end) + 1
}

/// `mod name { ... }` — recurse with the extended module path;
/// `mod name;` — just record the name.
fn parse_mod(
    t: &[Token],
    i: usize,
    end: usize,
    mod_path: &mut Vec<String>,
    out: &mut FileItems,
) -> usize {
    let Some(name) = t.get(i + 1).and_then(Token::ident) else { return i + 1 };
    let name = name.to_string();
    match t.get(i + 2).map(|tok| &tok.tok) {
        Some(Tok::Punct('{')) => {
            out.mods.push(name.clone());
            let close = match_brace(t, i + 2);
            mod_path.push(name);
            walk(t, i + 3, close.saturating_sub(1).min(end), mod_path, None, out);
            mod_path.pop();
            close
        }
        Some(Tok::Punct(';')) => {
            out.mods.push(name);
            i + 3
        }
        _ => i + 1,
    }
}

/// `impl<G> Type for Target { ... }` / `trait Name { ... }` — resolve the
/// subject type and recurse into the body with it as `impl_of`.
fn parse_impl(
    t: &[Token],
    i: usize,
    end: usize,
    mod_path: &mut Vec<String>,
    out: &mut FileItems,
) -> usize {
    // Scan the header up to the first `{` at angle/paren depth 0.
    let mut j = i + 1;
    let mut depth = 0i32;
    let mut subject: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < end {
        match &t[j].tok {
            Tok::Punct('<' | '(' | '[') => depth += 1,
            Tok::Punct('>' | ')' | ']') => depth -= 1,
            Tok::Punct('{') if depth <= 0 => break,
            Tok::Punct(';') if depth <= 0 => return j + 1, // `trait X: Y;` oddities
            Tok::Ident(id) if depth <= 0 => {
                if id == "for" {
                    saw_for = true;
                } else if id == "where" {
                    // `impl Foo where ...` — the subject is settled.
                    while j < end && !(t[j].is_punct('{') && depth <= 0) {
                        match &t[j].tok {
                            Tok::Punct('<' | '(' | '[') => depth += 1,
                            Tok::Punct('>' | ')' | ']') => depth -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    break;
                } else if saw_for {
                    after_for = Some(id.clone()); // last path segment wins
                } else {
                    subject = Some(id.clone()); // last depth-0 segment wins
                }
            }
            _ => {}
        }
        j += 1;
    }
    if j >= end {
        return end;
    }
    let close = match_brace(t, j);
    let name = after_for.or(subject);
    walk(t, j + 1, close.saturating_sub(1).min(end), mod_path, name.as_deref(), out);
    close
}

/// `fn name(...) -> Ret { ... }` — record and recurse into the body (for
/// nested fns and items).
fn parse_fn(
    t: &[Token],
    i: usize,
    end: usize,
    mod_path: &mut Vec<String>,
    impl_of: Option<&str>,
    out: &mut FileItems,
) -> usize {
    let Some(name) = t.get(i + 1).and_then(Token::ident) else { return i + 1 };
    // Signature runs to the first `{` at bracket depth 0, or aborts at `;`
    // (trait method declaration).
    let mut j = i + 2;
    let mut depth = 0i32;
    while j < end {
        match &t[j].tok {
            Tok::Punct('(' | '[' | '<') => depth += 1,
            Tok::Punct(')' | ']' | '>') => depth -= 1,
            Tok::Punct('{') if depth <= 0 => break,
            Tok::Punct(';') if depth <= 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    if j >= end {
        return end;
    }
    let close = match_brace(t, j);
    out.fns.push(ParsedFn {
        name: name.to_string(),
        line: t[i].line,
        impl_of: impl_of.map(str::to_string),
        mod_path: mod_path.clone(),
        sig: (i, j),
        body: (j, close),
        returns_result: sig_returns_result(&t[i..j]),
    });
    // Nested items (helper fns, local structs) belong to no impl.
    walk(t, j + 1, close.saturating_sub(1).min(end), mod_path, None, out);
    close
}

/// Does a signature return `Result` (or name a workspace error type in its
/// return position)? The return type starts at the `->` arrow.
fn sig_returns_result(sig: &[Token]) -> bool {
    let mut arrow = None;
    for (k, pair) in sig.windows(2).enumerate() {
        if pair[0].is_punct('-') && pair[1].is_punct('>') {
            arrow = Some(k + 2);
        }
    }
    let Some(from) = arrow else { return false };
    sig[from..].iter().any(|tok| {
        tok.ident().is_some_and(|id| {
            matches!(id, "Result" | "FlashError" | "NoFtlError" | "EngineError" | "CoreError")
        })
    })
}

/// `struct Name { a: T, pub b: U }` — record named fields; tuple and unit
/// structs are recorded with no fields.
fn parse_struct(t: &[Token], i: usize, end: usize, out: &mut FileItems) -> usize {
    let Some(name) = t.get(i + 1).and_then(Token::ident) else { return i + 1 };
    let line = t[i].line;
    // Find the body `{` at angle depth 0, bailing at `;` (unit) or a
    // tuple-struct `(`.
    let mut j = i + 2;
    let mut depth = 0i32;
    while j < end {
        match &t[j].tok {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => depth -= 1,
            Tok::Punct('(') if depth <= 0 => {
                // Tuple struct: no named fields; skip to the `;`.
                while j < end && !t[j].is_punct(';') {
                    j += 1;
                }
                out.structs.push(ParsedStruct { name: name.to_string(), line, fields: vec![] });
                return j + 1;
            }
            Tok::Punct(';') if depth <= 0 => {
                out.structs.push(ParsedStruct { name: name.to_string(), line, fields: vec![] });
                return j + 1;
            }
            Tok::Punct('{') if depth <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    if j >= end {
        return end;
    }
    let close = match_brace(t, j);
    // Fields: idents immediately followed by `:` at brace depth 1.
    let mut fields = Vec::new();
    let mut depth = 0i32;
    for k in j..close.min(end) {
        match &t[k].tok {
            Tok::Punct('{' | '(' | '[') => depth += 1,
            Tok::Punct('}' | ')' | ']') => depth -= 1,
            Tok::Ident(id) if depth == 1 => {
                let is_field = t.get(k + 1).is_some_and(|n| n.is_punct(':'))
                    && !t.get(k + 2).is_some_and(|n| n.is_punct(':'))
                    && id != "pub";
                if is_field {
                    fields.push(id.clone());
                }
            }
            _ => {}
        }
    }
    out.structs.push(ParsedStruct { name: name.to_string(), line, fields });
    close
}

/// `enum Name { A, B { .. }, C(T) = 3 }` — record the variant names.
fn parse_enum(t: &[Token], i: usize, end: usize, out: &mut FileItems) -> usize {
    let Some(name) = t.get(i + 1).and_then(Token::ident) else { return i + 1 };
    let line = t[i].line;
    let mut j = i + 2;
    let mut depth = 0i32;
    while j < end {
        match &t[j].tok {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => depth -= 1,
            Tok::Punct('{') if depth <= 0 => break,
            Tok::Punct(';') if depth <= 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    if j >= end {
        return end;
    }
    let close = match_brace(t, j);
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut expect = false;
    let mut k = j;
    while k < close.min(end) {
        match &t[k].tok {
            Tok::Punct('{' | '(' | '[') => {
                if depth == 0 {
                    expect = true; // the enum's own `{`
                }
                depth += 1;
            }
            Tok::Punct('}' | ')' | ']') => depth -= 1,
            Tok::Punct(',') if depth == 1 => expect = true,
            Tok::Punct('#')
                if depth == 1 && expect && t.get(k + 1).is_some_and(|n| n.is_punct('[')) =>
            {
                // Skip a `#[...]` attribute between variants.
                let mut d = 0i32;
                k += 1;
                while k < close {
                    if t[k].is_punct('[') {
                        d += 1;
                    } else if t[k].is_punct(']') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
            }
            Tok::Ident(id) if depth == 1 && expect => {
                variants.push((id.clone(), t[k].line));
                expect = false;
            }
            _ => {}
        }
        k += 1;
    }
    out.enums.push(ParsedEnum { name: name.to_string(), line, variants });
    close
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileItems {
        parse_file(&SourceFile::parse("crates/x/src/lib.rs", "x", src))
    }

    #[test]
    fn impl_methods_carry_their_type() {
        let src = "impl Database { fn begin(&mut self) {} }\n\
                   impl<'a> Txn<'a> { fn commit(self) -> Result<()> { Ok(()) } }\n\
                   impl From<u8> for EngineError { fn from(_: u8) -> Self { todo() } }\n\
                   fn free() {}";
        let items = parse(src);
        let by_name: Vec<(&str, Option<&str>, bool)> = items
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_of.as_deref(), f.returns_result))
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("begin", Some("Database"), false),
                ("commit", Some("Txn"), true),
                ("from", Some("EngineError"), false),
                ("free", None, false),
            ]
        );
    }

    #[test]
    fn structs_and_enums_are_extracted() {
        let src = "pub struct Stats { pub a: u64, b: Vec<u8> }\n\
                   struct Unit;\n\
                   struct Pair(u8, u8);\n\
                   pub enum Kind { Read, Write { bytes: u32 }, Huge(u64), Last = 9 }";
        let items = parse(src);
        assert_eq!(items.structs.len(), 3);
        assert_eq!(items.structs[0].fields, vec!["a", "b"]);
        assert!(items.structs[1].fields.is_empty());
        assert!(items.structs[2].fields.is_empty());
        let variants: Vec<&str> = items.enums[0].variants.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(variants, vec!["Read", "Write", "Huge", "Last"]);
    }

    #[test]
    fn imports_and_modules() {
        let src = "use ipa_flash::{Ppa, FlashDevice};\nuse std::collections::HashMap;\n\
                   use ipa_noftl::Lba;\nmod sub { fn inner() {} }";
        let items = parse(src);
        assert_eq!(items.imports, vec!["flash", "noftl"]);
        assert_eq!(items.mods, vec!["sub"]);
        let inner = items.fns.iter().find(|f| f.name == "inner").expect("inner fn");
        assert_eq!(inner.mod_path, vec!["sub"]);
    }

    #[test]
    fn enum_attributes_between_variants_are_skipped() {
        let src = "enum E { A, #[cfg(feature = \"x\")] B, C }";
        let items = parse(src);
        let variants: Vec<&str> = items.enums[0].variants.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(variants, vec!["A", "B", "C"]);
    }

    #[test]
    fn trait_default_methods_attach_to_the_trait() {
        let src = "trait Lint { fn code(&self) -> u8; fn noisy(&self) { } }";
        let items = parse(src);
        assert_eq!(items.fns.len(), 1, "bodyless declarations are not items");
        assert_eq!(items.fns[0].name, "noisy");
        assert_eq!(items.fns[0].impl_of.as_deref(), Some("Lint"));
    }
}
