//! `ipa-audit` — workspace-wide static analysis for the IPA stack.
//!
//! The simulator's correctness rests on a handful of cross-crate
//! invariants that `rustc` cannot see: the ISPP monotone-charge rule is
//! only enforced inside `ipa-flash`, the `engine -> noftl -> flash`
//! layering is a convention, and the queued-I/O API makes it possible to
//! submit commands that are never completed. This crate is a
//! dependency-free auditor that pins those invariants as machine-checked
//! lints, run in CI as `cargo run -p ipa-audit -- check --deny-warnings`.
//!
//! Pipeline: [`workspace::Workspace::load`] lexes every `crates/*/src`
//! file ([`lexer`], [`source`]) and reduces the manifests to dependency
//! lists; each registered [`lints::Lint`] walks the token streams and
//! manifests appending [`findings::Finding`]s; [`run`] then applies
//! `// audit:allow(Lxxx, reason = "...")` pragmas ([`pragma`]) — each
//! pragma suppresses exactly one finding on its own or the following
//! line — and emits unused/malformed pragmas as `L000` warnings. The
//! result is a [`findings::Report`] with a bench-results-style JSON
//! rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod cfg;
pub mod findings;
pub mod itemgraph;
pub mod lexer;
pub mod lints;
pub mod parse;
pub mod pragma;
pub mod source;
pub mod workspace;

use std::io;
use std::path::Path;

use findings::{Finding, Report, Severity, Suppressed};
use workspace::Workspace;

/// Shared semantic context handed to every lint: the workspace plus the
/// item graph and call graph built over it once per audit.
pub struct Analysis<'a> {
    /// The loaded workspace (token streams + manifests).
    pub ws: &'a Workspace,
    /// Items: crates → files → fns/impls/structs/enums with token spans.
    pub items: itemgraph::ItemGraph,
    /// Name-resolved intra-workspace call graph.
    pub calls: callgraph::CallGraph,
}

impl<'a> Analysis<'a> {
    /// Build the item and call graphs for a workspace.
    pub fn new(ws: &'a Workspace) -> Analysis<'a> {
        let items = itemgraph::ItemGraph::build(ws);
        let calls = callgraph::CallGraph::build(ws, &items);
        Analysis { ws, items, calls }
    }
}

/// Load the workspace rooted at `root` and audit it.
pub fn run(root: &Path) -> io::Result<Report> {
    let ws = Workspace::load(root)?;
    Ok(audit(&ws))
}

/// Audit an already-loaded workspace: run every registered lint, apply
/// suppression pragmas, and assemble the report.
pub fn audit(ws: &Workspace) -> Report {
    let cx = Analysis::new(ws);
    let mut report = Report { files_scanned: ws.files.len(), ..Report::default() };
    let mut live: Vec<Finding> = Vec::new();
    for lint in lints::all() {
        let before = live.len();
        lint.check(&cx, &mut live);
        report.lints.push((lint.code(), lint.name(), live.len() - before));
    }
    apply_pragmas(ws, &mut live, &mut report);
    live.sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    // Refresh per-lint counts to the post-suppression numbers.
    for entry in &mut report.lints {
        entry.2 = live.iter().filter(|f| f.code == entry.0).count();
    }
    report.findings = live;
    report
}

/// Apply `audit:allow` pragmas file by file. Each well-formed pragma
/// suppresses **exactly one** finding of its code located on the pragma's
/// line or the immediately following line; pragmas that suppress nothing,
/// and malformed pragmas, become `L000` warnings so allows cannot rot.
fn apply_pragmas(ws: &Workspace, live: &mut Vec<Finding>, report: &mut Report) {
    for file in &ws.files {
        let (pragmas, malformed) = pragma::scan(&file.comments);
        for p in pragmas {
            let slot = live.iter().position(|f| {
                f.file == file.path
                    && f.code == p.code
                    && (f.line == p.line || f.line == p.line + 1)
            });
            match slot {
                Some(idx) => {
                    let finding = live.remove(idx);
                    report.suppressed.push(Suppressed { finding, reason: p.reason });
                }
                None => live.push(Finding {
                    code: "L000",
                    severity: Severity::Warning,
                    file: file.path.clone(),
                    line: p.line,
                    message: format!(
                        "unused audit:allow({}) pragma — it suppresses nothing; remove it",
                        p.code
                    ),
                }),
            }
        }
        for m in malformed {
            live.push(Finding {
                code: "L000",
                severity: Severity::Warning,
                file: file.path.clone(),
                line: m.line,
                message: format!("malformed audit:allow pragma: {}", m.problem),
            });
        }
    }
}
