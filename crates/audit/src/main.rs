//! `ipa-audit` CLI.
//!
//! ```text
//! cargo run -p ipa-audit -- check [--root DIR] [--json PATH] [--format json|sarif] [--deny-warnings]
//! cargo run -p ipa-audit -- lints
//! ```
//!
//! `check` audits the workspace, prints findings as `file:line: [code]
//! message`, writes the report (default
//! `bench-results/audit-report.json`, or `.sarif` with `--format sarif`,
//! under the root) and exits 0 when the gate passes, 1 when it fails.
//! Usage errors exit 2. Reports are byte-stable: two runs over the same
//! tree produce identical output (CI asserts this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use ipa_audit::findings::Severity;

/// Print a line to stdout, ignoring broken pipes (`check | head` must
/// not panic the auditor).
macro_rules! say {
    ($($arg:tt)*) => {
        let _ = writeln!(std::io::stdout(), $($arg)*);
    };
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("lints") => lints(),
        _ => {
            eprintln!(
                "usage: ipa-audit check [--root DIR] [--json PATH] [--format json|sarif] [--deny-warnings]\n\
                 \x20      ipa-audit lints"
            );
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut deny_warnings = false;
    let mut sarif = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--json" => match it.next() {
                Some(path) => json = Some(PathBuf::from(path)),
                None => return usage("--json needs a path"),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("json") => sarif = false,
                Some("sarif") => sarif = true,
                Some(other) => return usage(&format!("unknown format `{other}`")),
                None => return usage("--format needs `json` or `sarif`"),
            },
            "--deny-warnings" => deny_warnings = true,
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !root.join("crates").is_dir() && !root.join("src").is_dir() {
        eprintln!("ipa-audit: `{}` does not look like a workspace root", root.display());
        return ExitCode::from(2);
    }

    let report = match ipa_audit::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ipa-audit: failed to load workspace: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        let tag = match f.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        say!("{tag}: {}", f.render());
    }
    for s in &report.suppressed {
        say!("allowed: {} (reason: {})", s.finding.render(), s.reason);
    }
    say!(
        "ipa-audit: {} files, {} errors, {} warnings, {} suppressed",
        report.files_scanned,
        report.errors(),
        report.warnings(),
        report.suppressed.len()
    );

    let default_name =
        if sarif { "bench-results/audit-report.sarif" } else { "bench-results/audit-report.json" };
    let out_path = json.unwrap_or_else(|| root.join(default_name));
    if let Some(dir) = out_path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("ipa-audit: cannot create `{}`: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    let rendered = if sarif { report.to_sarif() } else { report.to_json(deny_warnings) };
    if let Err(e) = std::fs::write(&out_path, rendered) {
        eprintln!("ipa-audit: cannot write `{}`: {e}", out_path.display());
        return ExitCode::from(2);
    }
    say!("ipa-audit: report written to {}", out_path.display());

    if report.clean(deny_warnings) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn lints() -> ExitCode {
    for lint in ipa_audit::lints::all() {
        say!("{}  {:<22} {}", lint.code(), lint.name(), lint.description());
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ipa-audit: {msg}");
    ExitCode::from(2)
}
