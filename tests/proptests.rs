//! Property-based tests over the core invariants of the stack.

use proptest::prelude::*;

use ipa::core::{
    delta, ChangePair, ChangeTracker, DbPage, DeltaRecord, FlushDecision, NxM, PageLayout,
};
use ipa::flash::{FlashConfig, FlashDevice, OpOrigin, Ppa};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ISPP invariant: any sequence of partial programs either fails or
    /// leaves every bit monotonically non-increasing (1 -> 0 only).
    #[test]
    fn flash_charge_is_monotone(
        writes in prop::collection::vec(
            (0usize..4096, prop::collection::vec(any::<u8>(), 1..32)),
            1..20,
        )
    ) {
        let mut dev = FlashDevice::new(FlashConfig::small_slc());
        let ppa = Ppa::new(0, 0, 0);
        dev.program(ppa, &vec![0xFF; 4096], OpOrigin::Host).unwrap();
        let mut shadow = vec![0xFFu8; 4096];
        for (off, data) in writes {
            if off + data.len() > 4096 {
                continue;
            }
            let before = dev.peek(ppa).unwrap().to_vec();
            match dev.program_partial(ppa, off, &data, OpOrigin::Host) {
                Ok(_) => {
                    for (i, &b) in data.iter().enumerate() {
                        shadow[off + i] = b;
                    }
                }
                Err(_) => {
                    // Failed programs must leave the page untouched.
                    prop_assert_eq!(dev.peek(ppa).unwrap(), &before[..]);
                }
            }
            // Every accepted state matches the shadow, and transitions were
            // monotone: new & !old == 0 for each accepted write.
            let now = dev.peek(ppa).unwrap();
            for i in 0..4096 {
                prop_assert_eq!(now[i], shadow[i]);
                prop_assert_eq!(now[i] & !before[i] & !now[i], 0);
            }
        }
    }

    /// Delta records survive encode/decode for any in-budget pair sets.
    #[test]
    fn delta_record_roundtrip(
        n in 1u16..4,
        m in 1u16..20,
        v in 0u16..16,
        body_seed in prop::collection::vec((0u16..4000, any::<u8>()), 0..20),
        meta_seed in prop::collection::vec((0u16..32, any::<u8>()), 0..16),
    ) {
        let scheme = NxM::new(n, m, v);
        let mut body: Vec<ChangePair> = body_seed
            .into_iter()
            .take(m as usize)
            .map(|(offset, value)| ChangePair { offset, value })
            .collect();
        body.dedup_by_key(|p| p.offset);
        let mut meta: Vec<ChangePair> = meta_seed
            .into_iter()
            .take(v as usize)
            .map(|(offset, value)| ChangePair { offset, value })
            .collect();
        meta.dedup_by_key(|p| p.offset);
        let rec = DeltaRecord::new(body, meta);
        let encoded = rec.encode(&scheme).unwrap();
        prop_assert_eq!(encoded.len(), scheme.delta_record_size());
        let decoded = DeltaRecord::decode(&encoded, &scheme).unwrap().unwrap();
        prop_assert_eq!(decoded, rec);
    }

    /// Applying delta records to a page is exactly byte substitution:
    /// every pair lands, nothing else changes.
    #[test]
    fn delta_apply_is_exact(
        pairs in prop::collection::vec((100u16..2000, any::<u8>()), 1..30),
    ) {
        let mut unique = std::collections::BTreeMap::new();
        for (off, val) in pairs {
            unique.insert(off, val);
        }
        let rec = DeltaRecord::new(
            unique.iter().map(|(&offset, &value)| ChangePair { offset, value }).collect(),
            vec![],
        );
        let mut page = vec![0xEEu8; 4096];
        rec.apply(&mut page).unwrap();
        for (i, &b) in page.iter().enumerate() {
            match unique.get(&(i as u16)) {
                Some(&v) => prop_assert_eq!(b, v),
                None => prop_assert_eq!(b, 0xEE),
            }
        }
    }

    /// Slotted-page operations keep tuples readable and never corrupt
    /// unrelated slots.
    #[test]
    fn slotted_page_model_check(
        ops in prop::collection::vec((0u8..3, 0usize..8, 1usize..60), 1..40),
    ) {
        let layout = PageLayout::new(2048, NxM::tpcc()).unwrap();
        let mut page = DbPage::format(7, layout);
        let mut tracker = ChangeTracker::new(*page.scheme(), 0, false);
        let mut model: Vec<Option<Vec<u8>>> = Vec::new();
        for (op, target, len) in ops {
            match op {
                // insert
                0 => {
                    let data = vec![(len % 251) as u8; len];
                    if let Ok(slot) = page.insert_tuple(&data, &mut tracker) {
                        prop_assert_eq!(slot.0 as usize, model.len());
                        model.push(Some(data));
                    }
                }
                // update (same length -> in place)
                1 => {
                    if let Some(Some(existing)) = model.get(target) {
                        let data = vec![0x5A; existing.len()];
                        page.update_tuple(ipa::core::SlotId(target as u16), &data, &mut tracker)
                            .unwrap();
                        model[target] = Some(data);
                    }
                }
                // delete
                _ => {
                    if let Some(Some(_)) = model.get(target) {
                        page.delete_tuple(ipa::core::SlotId(target as u16), &mut tracker).unwrap();
                        model[target] = None;
                    }
                }
            }
            // Model equivalence after every step.
            for (i, expect) in model.iter().enumerate() {
                let slot = ipa::core::SlotId(i as u16);
                match expect {
                    Some(data) => prop_assert_eq!(page.tuple(slot).unwrap(), &data[..]),
                    None => prop_assert!(page.tuple(slot).is_err()),
                }
            }
        }
    }

    /// The flush decision respects the [NxM] capacity exactly: IPA iff the
    /// accumulated distinct body bytes fit C_p and metadata fits V.
    #[test]
    fn flush_decision_matches_capacity(
        n in 1u16..4,
        m in 1u16..10,
        n_existing in 0u16..4,
        body_offsets in prop::collection::vec(200u16..4000, 0..40),
        meta_count in 0u16..20,
    ) {
        let scheme = NxM::new(n, m, 12);
        let mut t = ChangeTracker::new(scheme, n_existing.min(n), true);
        let mut distinct = std::collections::BTreeSet::new();
        for off in &body_offsets {
            t.record_body(*off);
            distinct.insert(*off);
        }
        for i in 0..meta_count.min(12) {
            t.record_meta(i);
        }
        let page = vec![0u8; 4096];
        let u = distinct.len();
        let cp = scheme.remaining_capacity(n_existing.min(n));
        let fits = u <= cp
            && (meta_count.min(12) as usize) <= scheme.v as usize
            && scheme.records_needed(u) <= (scheme.n - n_existing.min(n)) as usize;
        match t.decide(&page) {
            FlushDecision::Clean => prop_assert!(u == 0 && meta_count == 0),
            FlushDecision::Ipa(records) => {
                prop_assert!(fits, "IPA allowed with U={u}, Cp={cp}");
                let total: usize = records.iter().map(|r| r.body.len()).sum();
                prop_assert_eq!(total, u);
                for r in &records {
                    prop_assert!(r.body.len() <= m as usize);
                }
            }
            FlushDecision::OutOfPlace => prop_assert!(!fits || u == 0),
        }
    }

    /// count_records over any sequence of appended records is exact.
    #[test]
    fn delta_area_count_is_exact(k in 0u16..4) {
        let scheme = NxM::new(4, 3, 4);
        let size = scheme.delta_record_size();
        let mut area = vec![0xFF; scheme.delta_area_size()];
        for i in 0..k {
            let rec = DeltaRecord::new(vec![ChangePair { offset: 100 + i, value: 1 }], vec![]);
            let enc = rec.encode(&scheme).unwrap();
            area[i as usize * size..(i as usize + 1) * size].copy_from_slice(&enc);
        }
        prop_assert_eq!(delta::count_records(&area, &scheme).unwrap(), k);
        prop_assert_eq!(delta::decode_all(&area, &scheme).unwrap().len(), k as usize);
    }
}
