//! Model-based property tests of the NoFTL mapping layer: arbitrary
//! interleavings of writes, deltas, trims and reads must match a simple
//! shadow map — through garbage collection, wear leveling and mode rules.

use std::collections::HashMap;

use proptest::prelude::*;

use ipa::flash::{CellType, FlashConfig};
use ipa::noftl::{IoCtx, IpaMode, Lba, NoFtl, NoFtlConfig, NoFtlError, RegionId};

fn small_ftl(mode: IpaMode, cell: CellType) -> NoFtl {
    let mut flash = FlashConfig::small_slc();
    flash.geometry.chips = 2;
    flash.geometry.blocks_per_chip = 12;
    flash.geometry.pages_per_block = 8;
    flash.geometry.page_size = 256;
    flash.geometry.cell_type = cell;
    flash.max_appends = Some(8);
    NoFtl::new(NoFtlConfig::single_region(flash, mode, 0.35)).unwrap()
}

#[derive(Debug, Clone)]
enum Op {
    Write(u64, u8),
    Delta(u64, u8),
    Trim(u64),
    Read(u64),
}

fn ops() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..48, any::<u8>()).prop_map(|(l, b)| Op::Write(l, b)),
        3 => (0u64..48, any::<u8>()).prop_map(|(l, b)| Op::Delta(l, b)),
        1 => (0u64..48).prop_map(Op::Trim),
        3 => (0u64..48).prop_map(Op::Read),
    ]
}

fn page_image(byte: u8, size: usize) -> Vec<u8> {
    // Body programmed, tail left erased so deltas have somewhere to land.
    let mut v = vec![0xFF; size];
    v[..size / 2].fill(byte);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mapping_matches_shadow(ops in prop::collection::vec(ops(), 1..160)) {
        let mut ftl = small_ftl(IpaMode::Slc, CellType::Slc);
        let rid = RegionId(0);
        let page_size = 256usize;
        // Shadow: lba -> (expected full image, appends used).
        let mut shadow: HashMap<u64, (Vec<u8>, u32)> = HashMap::new();
        for op in ops {
            match op {
                Op::Write(lba, b) => {
                    let img = page_image(b, page_size);
                    ftl.write_page(rid, Lba(lba), &img, IoCtx::default()).unwrap();
                    shadow.insert(lba, (img, 0));
                }
                Op::Delta(lba, b) => {
                    // Each delta writes 4 bytes into a fresh slice of the
                    // erased tail (slot = appends-so-far).
                    match shadow.get_mut(&lba) {
                        Some((img, appends)) if *appends < 8 => {
                            let off = page_size / 2 + (*appends as usize) * 8;
                            ftl.write_delta(rid, Lba(lba), off, &[b, b, b, b], IoCtx::default()).unwrap();
                            img[off..off + 4].fill(b);
                            *appends += 1;
                        }
                        Some((_, _)) => {
                            // Budget exhausted: device must refuse.
                            prop_assert!(ftl
                                .write_delta(rid, Lba(lba), 0, &[0], IoCtx::default())
                                .is_err());
                        }
                        None => {
                            prop_assert!(matches!(
                                ftl.write_delta(rid, Lba(lba), 0, &[b], IoCtx::default()),
                                Err(NoFtlError::Unmapped(_))
                            ));
                        }
                    }
                }
                Op::Trim(lba) => {
                    ftl.trim(rid, Lba(lba)).unwrap();
                    shadow.remove(&lba);
                }
                Op::Read(lba) => match shadow.get(&lba) {
                    Some((img, _)) => {
                        let (got, _) = ftl.read_page(rid, Lba(lba), IoCtx::default()).unwrap();
                        prop_assert_eq!(&got, img);
                    }
                    None => {
                        prop_assert!(matches!(
                            ftl.read_page(rid, Lba(lba), IoCtx::default()),
                            Err(NoFtlError::Unmapped(_))
                        ));
                    }
                },
            }
        }
        // Final sweep: every mapped page matches its shadow.
        for (lba, (img, _)) in &shadow {
            let (got, _) = ftl.read_page(rid, Lba(*lba), IoCtx::default()).unwrap();
            prop_assert_eq!(&got, img, "lba {}", lba);
        }
    }

    #[test]
    fn tlc_region_behaves_like_slc_for_appends(writes in 1u64..40) {
        // Appendix C.3: 3D/TLC flash takes appends via the SLC-style mode.
        let mut flash = FlashConfig::small_slc();
        flash.geometry.chips = 2;
        flash.geometry.blocks_per_chip = 12;
        flash.geometry.pages_per_block = 8;
        flash.geometry.page_size = 256;
        flash.geometry.cell_type = CellType::Tlc;
        let mut ftl = NoFtl::new(NoFtlConfig::single_region(flash, IpaMode::Slc, 0.35)).unwrap();
        let rid = RegionId(0);
        for l in 0..writes {
            ftl.write_page(rid, Lba(l), &page_image(l as u8, 256), IoCtx::default()).unwrap();
            prop_assert!(ftl.can_append(rid, Lba(l)));
            ftl.write_delta(rid, Lba(l), 200, &[0xAA], IoCtx::default()).unwrap();
            let (got, _) = ftl.read_page(rid, Lba(l), IoCtx::default()).unwrap();
            prop_assert_eq!(got[200], 0xAA);
        }
    }
}

#[test]
fn tlc_endurance_is_the_lowest() {
    // TLC wears out fastest: 4k cycles vs 10k (MLC) vs 100k (SLC).
    use ipa::flash::CellType::*;
    assert!(Tlc.endurance_limit() < Mlc.endurance_limit());
    assert!(Mlc.endurance_limit() < Slc.endurance_limit());
}

#[test]
fn gc_heavy_churn_preserves_every_mapping() {
    // Long deterministic churn far past device capacity with mixed deltas:
    // the shadow must survive dozens of GC rounds.
    let mut ftl = small_ftl(IpaMode::Slc, CellType::Slc);
    let rid = RegionId(0);
    let mut shadow: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut x = 0x12345678u64;
    let mut rand = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for _ in 0..4_000 {
        let lba = rand() % 40;
        match rand() % 10 {
            0..=6 => {
                let b = (rand() & 0x7F) as u8;
                let img = page_image(b, 256);
                ftl.write_page(rid, Lba(lba), &img, IoCtx::default()).unwrap();
                shadow.insert(lba, img);
            }
            7..=8 => {
                if let Some(img) = shadow.get_mut(&lba) {
                    if ftl.can_append(rid, Lba(lba)) {
                        let off = 128 + ((rand() % 16) as usize) * 8;
                        // Identical re-append of programmed cells is legal;
                        // use a value that only clears bits of 0xFF or
                        // matches what's there.
                        let cur = img[off];
                        let val = cur & (rand() as u8);
                        ftl.write_delta(rid, Lba(lba), off, &[val], IoCtx::default()).unwrap();
                        img[off] = val;
                    }
                }
            }
            _ => {
                ftl.trim(rid, Lba(lba)).unwrap();
                shadow.remove(&lba);
            }
        }
    }
    for (lba, img) in &shadow {
        let (got, _) = ftl.read_page(rid, Lba(*lba), IoCtx::default()).unwrap();
        assert_eq!(&got, img, "lba {lba}");
    }
    let stats = ftl.region_stats(rid).unwrap();
    assert!(stats.gc_erases > 10, "GC must have churned: {stats:?}");
}
