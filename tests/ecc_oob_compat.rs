//! Keeps `ipa_core::ecc::ipa_oob` (the dependency-free mirror used by the
//! ECC scheme) structurally identical to `ipa_flash::OobLayout` — the two
//! crates must agree on byte offsets or ECC codes would land in the wrong
//! OOB slots.

use ipa::core::ecc::ipa_oob;
use ipa::flash::{OobLayout, Section};

#[test]
fn layouts_agree_for_all_reasonable_configs() {
    for oob_size in [64usize, 128, 224, 256] {
        for max_deltas in 0u32..6 {
            let a = OobLayout::standard(oob_size, max_deltas);
            let b = ipa_oob::OobLayout::standard(oob_size, max_deltas);
            assert_eq!(a.is_some(), b.is_some(), "oob={oob_size} n={max_deltas}");
            let (Some(a), Some(b)) = (a, b) else { continue };
            assert_eq!(a.range(Section::Meta), b.range(ipa_oob::Section::Meta));
            assert_eq!(a.range(Section::EccInitial), b.range(ipa_oob::Section::EccInitial));
            for i in 0..max_deltas + 2 {
                assert_eq!(
                    a.range(Section::EccDelta(i)),
                    b.range(ipa_oob::Section::EccDelta(i)),
                    "delta slot {i}, oob={oob_size}, n={max_deltas}"
                );
            }
        }
    }
}

#[test]
fn ecc_slot_size_matches_layout_slots() {
    // The codes `ipa_core::ecc` produces must fit the slots the layouts
    // reserve.
    let layout = OobLayout::standard(128, 3).unwrap();
    assert_eq!(layout.ecc_slot_size, ipa::core::ecc::ECC_SLOT_SIZE);
    let code = ipa::core::ecc::encode_slot(b"anything");
    assert_eq!(code.len(), layout.ecc_slot_size);
}
