//! Cross-crate integration tests: the full stack from workload driver down
//! to simulated flash cells.

use ipa::core::NxM;
use ipa::engine::{Database, DbConfig};
use ipa::flash::FlashConfig;
use ipa::noftl::{IpaMode, NoFtlConfig, RegionId};
use ipa::workloads::{Runner, SystemConfig, Tatp, TpcB, TpcC, Workload};

fn small_db(scheme: NxM) -> Database {
    let mut flash = FlashConfig::small_slc();
    flash.geometry.page_size = 1024;
    flash.geometry.pages_per_block = 16;
    let cfg = NoFtlConfig::single_region(flash, IpaMode::Slc, 0.2);
    Database::builder(cfg).scheme(scheme).config(DbConfig::eager(32)).open().unwrap()
}

#[test]
fn ipa_reduces_erases_across_workloads() {
    // The paper's core claim, checked end-to-end on two workloads.
    for (name, mk, scheme, txns) in [
        (
            "tpcb",
            Box::new(|| -> Box<dyn Workload> { Box::new(TpcB::new(2, 800)) })
                as Box<dyn Fn() -> Box<dyn Workload>>,
            NxM::tpcb(),
            2500u64,
        ),
        (
            "tpcc",
            Box::new(|| -> Box<dyn Workload> { Box::new(TpcC::new(1, 500, 60)) }),
            NxM::tpcc(),
            2000u64,
        ),
    ] {
        let run = |s: NxM| {
            let cfg = SystemConfig::emulator(s, 0.2);
            let mut w = mk();
            let mut db = cfg.build(w.estimated_pages(cfg.page_size)).unwrap();
            let runner = Runner::new(3);
            runner.setup(&mut db, w.as_mut()).unwrap();
            runner.run(&mut db, w.as_mut(), 400, txns).unwrap()
        };
        let base = run(NxM::disabled());
        let ipa = run(scheme);
        assert!(
            ipa.region.erases_per_host_write() < base.region.erases_per_host_write(),
            "{name}: erases/write {} !< {}",
            ipa.region.erases_per_host_write(),
            base.region.erases_per_host_write()
        );
        assert!(
            ipa.region.migrations_per_host_write() < base.region.migrations_per_host_write(),
            "{name}: migrations/write must drop"
        );
        assert!(ipa.region.ipa_fraction() > 0.2, "{name}: ipa fraction too low");
        // The baseline never appends.
        assert_eq!(base.region.host_delta_writes, 0);
    }
}

#[test]
fn durability_through_heavy_churn_with_gc() {
    // Flash-level GC relocations + IPA appends + buffer evictions must
    // never lose a committed write.
    let mut db = small_db(NxM::new(2, 8, 12));
    let heap = db.create_heap(0);
    let mut rids = Vec::new();
    let mut tx = db.txn();
    for i in 0..400u32 {
        let mut rec = [0u8; 40];
        rec[..4].copy_from_slice(&i.to_le_bytes());
        rec[4..8].copy_from_slice(&i.to_le_bytes()); // value field starts at i
        rids.push(tx.heap_insert(heap, &rec).unwrap());
    }
    tx.commit().unwrap();
    db.flush_all().unwrap();

    // Many rounds of small updates to pseudo-random tuples.
    let mut expected: Vec<u32> = (0..400).collect();
    for round in 1..=40u32 {
        let mut tx = db.txn();
        for k in 0..40u32 {
            let i = (k.wrapping_mul(2_654_435_761).wrapping_add(round * 97) % 400) as usize;
            let mut rec = tx.db().heap_read_unlocked(rids[i]).unwrap();
            let v = expected[i].wrapping_add(round);
            rec[4..8].copy_from_slice(&v.to_le_bytes());
            expected[i] = v;
            // Keep bytes 0..4 as the identity.
            let new_rid = tx.heap_update(heap, rids[i], &rec).unwrap();
            rids[i] = new_rid;
        }
        tx.commit().unwrap();
        db.background_work().unwrap();
    }
    db.flush_all().unwrap();
    let stats = db.region_stats(0).unwrap();
    assert!(stats.host_delta_writes > 0, "IPA must have been exercised");

    for (i, rid) in rids.iter().enumerate() {
        let rec = db.heap_read_unlocked(*rid).unwrap();
        let id = u32::from_le_bytes(rec[..4].try_into().unwrap());
        let v = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        assert_eq!(id, i as u32, "identity of tuple {i}");
        assert_eq!(v, expected[i], "value of tuple {i}");
    }
}

#[test]
fn crash_recovery_at_workload_scale() {
    let cfg = SystemConfig::emulator(NxM::tpcb(), 0.3);
    let mut w = TpcB::new(1, 300);
    let mut db = cfg.build(w.estimated_pages(cfg.page_size)).unwrap();
    let runner = Runner::new(5);
    runner.setup(&mut db, &mut w).unwrap();
    runner.run(&mut db, &mut w, 0, 500).unwrap();
    // Force the log so all committed work survives; crash mid-flight.
    db.force_log();
    db.simulate_crash();
    db.recover().unwrap();
    // The workload must be able to continue after restart.
    runner.run(&mut db, &mut w, 0, 200).unwrap();
}

#[test]
fn odd_mlc_mixes_appends_and_out_of_place() {
    let cfg = SystemConfig::openssd(NxM::tpcb(), false);
    let mut w = TpcB::new(1, 400);
    let mut db = cfg.build(w.estimated_pages(cfg.page_size)).unwrap();
    let runner = Runner::new(11);
    runner.setup(&mut db, &mut w).unwrap();
    let report = runner.run(&mut db, &mut w, 200, 1500).unwrap();
    let f = report.region.ipa_fraction();
    // odd-MLC can only append on LSB residencies: the fraction must be
    // meaningfully above zero but clearly below the pSLC ceiling.
    assert!(f > 0.05, "fraction {f}");
    assert!(f < 0.9, "fraction {f}");

    let pslc_cfg = SystemConfig::openssd(NxM::tpcb(), true);
    let mut w2 = TpcB::new(1, 400);
    let mut db2 = pslc_cfg.build(w2.estimated_pages(pslc_cfg.page_size)).unwrap();
    runner.setup(&mut db2, &mut w2).unwrap();
    let pslc = runner.run(&mut db2, &mut w2, 200, 1500).unwrap();
    assert!(
        pslc.region.ipa_fraction() > f,
        "pSLC {} must capture more appends than odd-MLC {f}",
        pslc.region.ipa_fraction()
    );
}

#[test]
fn ecc_verification_full_stack() {
    // Run with ECC verification enabled: every fetch checks ECC_initial +
    // per-delta codes written through the OOB path.
    let mut flash = FlashConfig::small_slc();
    flash.geometry.page_size = 1024;
    let cfg = NoFtlConfig::single_region(flash, IpaMode::Slc, 0.2);
    let mut db_cfg = DbConfig::eager(16);
    db_cfg.verify_ecc = true;
    let mut db = Database::builder(cfg).scheme(NxM::tpcc()).config(db_cfg).open().unwrap();
    let heap = db.create_heap(0);
    let mut tx = db.txn();
    let rid = tx.heap_insert(heap, &[1u8, 2, 3, 4]).unwrap();
    tx.commit().unwrap();
    db.flush_all().unwrap();
    let mut tx = db.txn();
    tx.heap_update(heap, rid, &[9u8, 2, 3, 4]).unwrap();
    tx.commit().unwrap();
    db.flush_all().unwrap();
    assert!(db.stats().ipa_flushes >= 1);
    // Evict everything and re-read: ECC paths must verify.
    for _ in 0..16 {
        db.new_page(0).unwrap();
    }
    assert_eq!(db.heap_read_unlocked(rid).unwrap(), vec![9, 2, 3, 4]);
    assert!(db.stats().ecc_verified > 0);
}

#[test]
fn tatp_read_heavy_profile_holds_end_to_end() {
    let cfg = SystemConfig::emulator(NxM::tpcb(), 0.3);
    let mut w = Tatp::new(2_000);
    let mut db = cfg.build(w.estimated_pages(cfg.page_size)).unwrap();
    let runner = Runner::new(17);
    runner.setup(&mut db, &mut w).unwrap();
    let report = runner.run(&mut db, &mut w, 300, 2_000).unwrap();
    assert!(report.region.host_reads > report.region.host_writes());
    assert_eq!(report.commits, 2_000);
}

#[test]
fn region_capacity_is_respected_end_to_end() {
    let mut db = small_db(NxM::disabled());
    let cap = db.ftl().capacity(RegionId(0)).unwrap();
    // Allocate every page; the next allocation must fail cleanly.
    for _ in 0..cap {
        db.new_page(0).unwrap();
        // Flush as we go so the pool doesn't exhaust.
        db.flush_all().unwrap();
    }
    assert!(db.new_page(0).is_err());
}
