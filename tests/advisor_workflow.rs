//! The advisor workflow end to end: profile a live run, take the
//! recommendation, re-run with it, and verify the prediction holds — the
//! §8.4 "IPA advisor" loop ("a background DB log-file profiling mechanism,
//! analyzing the current workload at run-time").

use ipa::core::{AdvisorGoal, IpaAdvisor, NxM};
use ipa::workloads::{Runner, SystemConfig, TpcB, TpcC, Workload};

fn profile_run(
    w: &mut dyn Workload,
    scheme: NxM,
    txns: u64,
) -> (ipa::workloads::RunReport, ipa::engine::Database) {
    let cfg = SystemConfig::emulator(scheme, 0.3);
    let mut db = cfg.build_for(w).unwrap();
    let runner = Runner::new(77);
    runner.setup(&mut db, w).unwrap();
    let report = runner.run(&mut db, w, txns / 5, txns).unwrap();
    (report, db)
}

#[test]
fn advisor_recommendation_beats_naive_scheme_on_tpcc() {
    // Profile without IPA.
    let mut w = TpcC::new(1, 600, 80);
    let (_, db) = profile_run(&mut w, NxM::disabled(), 2_500);
    let advisor = IpaAdvisor::new(4096, 8);
    let rec = advisor.recommend(db.profile(0), AdvisorGoal::Performance);
    // The paper: M=3 is the natural TPC-C choice.
    assert!(rec.scheme.m <= 8, "TPC-C profile must yield a small M, got {}", rec.scheme.m);

    // Re-run with the recommendation and with a deliberately bad scheme.
    let mut w2 = TpcC::new(1, 600, 80);
    let (with_rec, _) = profile_run(&mut w2, rec.scheme, 2_500);
    let mut w3 = TpcC::new(1, 600, 80);
    let (with_bad, _) = profile_run(&mut w3, NxM::new(1, 1, 2), 2_500);
    assert!(
        with_rec.region.ipa_fraction() > with_bad.region.ipa_fraction(),
        "recommended {:.2} vs naive {:.2}",
        with_rec.region.ipa_fraction(),
        with_bad.region.ipa_fraction()
    );
    // Prediction sanity: measured fraction within a broad band of the
    // advisor's per-flush feasibility estimate.
    assert!(with_rec.region.ipa_fraction() > rec.predicted_ipa_fraction * 0.3);
}

#[test]
fn advisor_goals_trade_space_for_coverage_on_tpcb() {
    let mut w = TpcB::new(2, 600);
    let (_, db) = profile_run(&mut w, NxM::disabled(), 2_500);
    let advisor = IpaAdvisor::new(4096, 8);
    let perf = advisor.recommend(db.profile(0), AdvisorGoal::Performance);
    let longevity = advisor.recommend(db.profile(0), AdvisorGoal::Longevity);
    let space = advisor.recommend(db.profile(0), AdvisorGoal::Space);
    assert!(space.space_overhead <= perf.space_overhead);
    assert!(perf.space_overhead <= longevity.space_overhead);
    assert!(longevity.predicted_ipa_fraction >= space.predicted_ipa_fraction);
    // All recommendations must actually fit a 4 KiB page layout.
    for rec in [&perf, &longevity, &space] {
        assert!(ipa::core::PageLayout::new(4096, rec.scheme).is_ok());
    }
}

#[test]
fn profiles_are_per_region() {
    // Two regions, different workloads per region, independent profiles.
    use ipa::engine::{Database, DbConfig};
    use ipa::flash::FlashConfig;
    use ipa::noftl::{IpaMode, NoFtlConfig, RegionSpec};

    let mut flash = FlashConfig::small_slc();
    flash.geometry.chips = 2;
    flash.geometry.page_size = 1024;
    let cfg = NoFtlConfig {
        flash,
        regions: vec![
            RegionSpec::new("small", [0], IpaMode::Slc).with_over_provisioning(0.3),
            RegionSpec::new("large", [1], IpaMode::Slc).with_over_provisioning(0.3),
        ],
        gc_low_watermark: 2,
        fault_policy: Default::default(),
    };
    let mut db = Database::builder(cfg)
        .scheme(NxM::tpcb())
        .scheme(NxM::new(2, 64, 12))
        .config(DbConfig::eager(32))
        .open()
        .unwrap();
    let small = db.create_heap(0);
    let large = db.create_heap(1);
    let mut tx = db.txn();
    let s_rid = tx.heap_insert(small, &[0u8; 64]).unwrap();
    let l_rid = tx.heap_insert(large, &[0u8; 200]).unwrap();
    tx.commit().unwrap();
    db.flush_all().unwrap();
    for round in 0..20u8 {
        let mut tx = db.txn();
        let mut rec = tx.db().heap_read_unlocked(s_rid).unwrap();
        rec[0] = round; // 1-byte updates in region 0
        tx.heap_update(small, s_rid, &rec).unwrap();
        let mut rec = tx.db().heap_read_unlocked(l_rid).unwrap();
        for b in rec.iter_mut().take(60) {
            *b = round; // 60-byte updates in region 1
        }
        tx.heap_update(large, l_rid, &rec).unwrap();
        tx.commit().unwrap();
        db.flush_all().unwrap();
    }
    let p_small = db.profile(0);
    let p_large = db.profile(1);
    assert!(p_small.body_percentile(90.0) <= 4, "region 0 updates tiny");
    assert!(p_large.body_percentile(50.0) >= 30, "region 1 updates large");
    // Advisor would size them differently.
    let adv = IpaAdvisor::new(1024, 8);
    let r_small = adv.recommend(p_small, AdvisorGoal::Performance);
    let r_large = adv.recommend(p_large, AdvisorGoal::Performance);
    assert!(r_large.scheme.m > r_small.scheme.m);
}
