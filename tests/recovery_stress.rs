//! Randomized crash-recovery stress: commit/abort/crash at arbitrary
//! points and verify that exactly the committed state survives.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ipa::core::NxM;
use ipa::engine::{Database, DbConfig, Rid};
use ipa::flash::{FaultOp, FaultPlan, FlashConfig};
use ipa::noftl::{IpaMode, NoFtlConfig};

fn db(scheme: NxM) -> Database {
    let mut flash = FlashConfig::small_slc();
    flash.geometry.page_size = 1024;
    flash.geometry.pages_per_block = 16;
    let cfg = NoFtlConfig::single_region(flash, IpaMode::Slc, 0.2);
    Database::builder(cfg).scheme(scheme).config(DbConfig::eager(24)).open().unwrap()
}

/// Same geometry as [`db`], with an operation-fault plan raining on the
/// flash device (the default plan is inactive and bit-identical to `db`).
fn faulty_db(scheme: NxM, plan: FaultPlan) -> Database {
    let mut flash = FlashConfig::small_slc();
    flash.geometry.page_size = 1024;
    flash.geometry.pages_per_block = 16;
    let cfg = NoFtlConfig::builder(flash)
        .fault_plan(plan)
        .scrub_threshold(0.5)
        .single_region(IpaMode::Slc, 0.2)
        .build()
        .unwrap();
    Database::builder(cfg).scheme(scheme).config(DbConfig::eager(24)).open().unwrap()
}

/// One randomized episode: a committed history interleaved with aborted
/// transactions, random flushes, and a crash; recovery must restore the
/// committed view exactly.
fn episode(seed: u64, scheme: NxM) {
    episode_on(seed, db(scheme));
}

/// The episode body, on a caller-built database (fault-plan variants).
fn episode_on(seed: u64, mut d: Database) {
    let mut rng = StdRng::seed_from_u64(seed);
    let heap = d.create_heap(0);

    // Committed base population.
    let mut tx = d.txn();
    let mut rids: Vec<Rid> = Vec::new();
    let mut committed: Vec<Vec<u8>> = Vec::new();
    for i in 0..60u8 {
        let rec = vec![i; 24];
        rids.push(tx.heap_insert(heap, &rec).unwrap());
        committed.push(rec);
    }
    tx.commit().unwrap();
    d.flush_all().unwrap();

    // Random committed and aborted rounds.
    for round in 0..12 {
        let mut tx = d.txn();
        let mut staged = committed.clone();
        for _ in 0..rng.gen_range(1..6) {
            let i = rng.gen_range(0..rids.len());
            let mut rec = staged[i].clone();
            let pos = rng.gen_range(0..rec.len());
            rec[pos] = rng.gen();
            tx.heap_update(heap, rids[i], &rec).unwrap();
            staged[i] = rec;
        }
        let commit = rng.gen_bool(0.7);
        if commit {
            tx.commit().unwrap();
            committed = staged;
        } else {
            tx.abort().unwrap();
        }
        if rng.gen_bool(0.4) {
            d.background_work().unwrap();
        }
        if rng.gen_bool(0.3) {
            d.flush_all().unwrap();
        }
        let _ = round;
    }

    // All committed work is logged durably; crash and recover.
    d.force_log();
    d.simulate_crash();
    d.recover().unwrap();

    for (i, rid) in rids.iter().enumerate() {
        let got = d.heap_read_unlocked(*rid).unwrap();
        assert_eq!(got, committed[i], "seed {seed}, tuple {i}");
    }
}

#[test]
fn randomized_crash_recovery_with_ipa() {
    for seed in 0..12 {
        episode(seed, NxM::new(2, 8, 12));
    }
}

#[test]
fn randomized_crash_recovery_baseline() {
    for seed in 100..108 {
        episode(seed, NxM::disabled());
    }
}

#[test]
fn randomized_crash_recovery_under_fault_storm() {
    // The same episodes, while a seeded per-op fault storm rains on the
    // flash device: transient and permanent program failures, erase
    // failures and delta-append failures. Self-healing (retry, retire,
    // fallback) must keep exactly the committed state recoverable.
    for seed in 200..208 {
        let plan = FaultPlan::storm(seed, 2e-3, 0.25);
        episode_on(seed, faulty_db(NxM::new(2, 8, 12), plan));
    }
}

#[test]
fn crash_recovery_after_scripted_fault_burst() {
    // Deterministic burst: every fault class fires at a known operation
    // index (counted per class from device creation), including a
    // permanent program failure that retires a block mid-episode.
    let plan = FaultPlan::default()
        .with_scripted(FaultOp::Program, 3, false)
        .with_scripted(FaultOp::Program, 8, true)
        .with_scripted(FaultOp::DeltaProgram, 0, false)
        .with_scripted(FaultOp::Erase, 0, true);
    episode_on(77, faulty_db(NxM::new(2, 8, 12), plan));
}

#[test]
fn fault_episode_accounts_for_every_retired_block() {
    let plan = FaultPlan::default().with_scripted(FaultOp::Program, 2, true).with_scripted(
        FaultOp::Program,
        6,
        true,
    );
    let mut d = faulty_db(NxM::new(2, 8, 12), plan);
    let heap = d.create_heap(0);
    let mut tx = d.txn();
    let mut rids = Vec::new();
    for i in 0..200 {
        rids.push(tx.heap_insert(heap, &[i as u8; 24]).unwrap());
    }
    tx.commit().unwrap();
    d.flush_all().unwrap();

    let region = d.region_stats(0).unwrap().clone();
    let flash = d.ftl().device().stats().clone();
    assert!(region.retired_blocks >= 1, "permanent faults must retire blocks");
    assert_eq!(
        region.retired_blocks, flash.retired_blocks,
        "region and device retired-block accounting must agree"
    );
    for (i, rid) in rids.iter().enumerate() {
        assert_eq!(d.heap_read_unlocked(*rid).unwrap(), vec![i as u8; 24], "tuple {i}");
    }
}

#[test]
fn crash_with_unflushed_log_loses_only_uncommitted_tail() {
    // Commits whose log records were not forced may vanish — but recovery
    // must still produce a transaction-consistent prefix state.
    let mut d = db(NxM::tpcb());
    let heap = d.create_heap(0);
    let mut tx = d.txn();
    let rid = tx.heap_insert(heap, &[1u8, 1, 1, 1]).unwrap();
    tx.commit().unwrap(); // commit forces the log up to here
    d.flush_all().unwrap();

    let mut tx = d.txn();
    tx.heap_update(heap, rid, &[2u8, 1, 1, 1]).unwrap();
    tx.commit().unwrap(); // forced

    let mut tx = d.txn();
    tx.heap_update(heap, rid, &[3u8, 1, 1, 1]).unwrap();
    let _in_flight = tx.park(); // still open when the crash hits
    d.simulate_crash();
    d.recover().unwrap();
    assert_eq!(d.heap_read_unlocked(rid).unwrap(), vec![2, 1, 1, 1]);
}
