//! Randomized crash-recovery stress: commit/abort/crash at arbitrary
//! points and verify that exactly the committed state survives.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ipa::core::NxM;
use ipa::engine::{Database, DbConfig, Rid};
use ipa::flash::FlashConfig;
use ipa::noftl::{IpaMode, NoFtlConfig};

fn db(scheme: NxM) -> Database {
    let mut flash = FlashConfig::small_slc();
    flash.geometry.page_size = 1024;
    flash.geometry.pages_per_block = 16;
    let cfg = NoFtlConfig::single_region(flash, IpaMode::Slc, 0.2);
    Database::open(cfg, &[scheme], DbConfig::eager(24)).unwrap()
}

/// One randomized episode: a committed history interleaved with aborted
/// transactions, random flushes, and a crash; recovery must restore the
/// committed view exactly.
fn episode(seed: u64, scheme: NxM) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = db(scheme);
    let heap = d.create_heap(0);

    // Committed base population.
    let tx = d.begin();
    let mut rids: Vec<Rid> = Vec::new();
    let mut committed: Vec<Vec<u8>> = Vec::new();
    for i in 0..60u8 {
        let rec = vec![i; 24];
        rids.push(d.heap_insert(tx, heap, &rec).unwrap());
        committed.push(rec);
    }
    d.commit(tx).unwrap();
    d.flush_all().unwrap();

    // Random committed and aborted rounds.
    for round in 0..12 {
        let tx = d.begin();
        let mut staged = committed.clone();
        for _ in 0..rng.gen_range(1..6) {
            let i = rng.gen_range(0..rids.len());
            let mut rec = staged[i].clone();
            let pos = rng.gen_range(0..rec.len());
            rec[pos] = rng.gen();
            d.heap_update(tx, heap, rids[i], &rec).unwrap();
            staged[i] = rec;
        }
        let commit = rng.gen_bool(0.7);
        if commit {
            d.commit(tx).unwrap();
            committed = staged;
        } else {
            d.abort(tx).unwrap();
        }
        if rng.gen_bool(0.4) {
            d.background_work().unwrap();
        }
        if rng.gen_bool(0.3) {
            d.flush_all().unwrap();
        }
        let _ = round;
    }

    // All committed work is logged durably; crash and recover.
    d.force_log();
    d.simulate_crash();
    d.recover().unwrap();

    for (i, rid) in rids.iter().enumerate() {
        let got = d.heap_read_unlocked(*rid).unwrap();
        assert_eq!(got, committed[i], "seed {seed}, tuple {i}");
    }
}

#[test]
fn randomized_crash_recovery_with_ipa() {
    for seed in 0..12 {
        episode(seed, NxM::new(2, 8, 12));
    }
}

#[test]
fn randomized_crash_recovery_baseline() {
    for seed in 100..108 {
        episode(seed, NxM::disabled());
    }
}

#[test]
fn crash_with_unflushed_log_loses_only_uncommitted_tail() {
    // Commits whose log records were not forced may vanish — but recovery
    // must still produce a transaction-consistent prefix state.
    let mut d = db(NxM::tpcb());
    let heap = d.create_heap(0);
    let tx = d.begin();
    let rid = d.heap_insert(tx, heap, &[1u8, 1, 1, 1]).unwrap();
    d.commit(tx).unwrap(); // commit forces the log up to here
    d.flush_all().unwrap();

    let tx = d.begin();
    d.heap_update(tx, heap, rid, &[2u8, 1, 1, 1]).unwrap();
    d.commit(tx).unwrap(); // forced

    let tx = d.begin();
    d.heap_update(tx, heap, rid, &[3u8, 1, 1, 1]).unwrap();
    // Not committed, not forced: this change must vanish.
    d.simulate_crash();
    d.recover().unwrap();
    assert_eq!(d.heap_read_unlocked(rid).unwrap(), vec![2, 1, 1, 1]);
}
