//! Fault injection end to end: scripted program/erase/delta failures on
//! the flash device, self-healing in the NoFTL layer (retry, bad-block
//! retirement, delta-append fallback, scrubbing), and the visibility of
//! every episode in stats, snapshots and the trace.

use ipa::flash::{EventKind, FaultOp, FaultPlan, FlashConfig};
use ipa::noftl::{IoCtx, IpaMode, Lba, NoFtl, NoFtlConfig, RegionId};
use ipa::obs::{Snapshot, TraceHandle};

const R: RegionId = RegionId(0);

fn ftl_at(
    plan: FaultPlan,
    scrub_threshold: f64,
    over_provisioning: f64,
    mutate: impl FnOnce(&mut FlashConfig),
) -> NoFtl {
    let mut flash = FlashConfig::small_slc();
    mutate(&mut flash);
    let cfg = NoFtlConfig::builder(flash)
        .fault_plan(plan)
        .scrub_threshold(scrub_threshold)
        .single_region(IpaMode::Slc, over_provisioning)
        .build()
        .unwrap();
    NoFtl::new(cfg).unwrap()
}

fn ftl_with(plan: FaultPlan, scrub_threshold: f64, mutate: impl FnOnce(&mut FlashConfig)) -> NoFtl {
    ftl_at(plan, scrub_threshold, 0.2, mutate)
}

/// A page image whose first half is the body pattern and whose tail stays
/// erased (0xFF) — the area later in-place appends can charge into under
/// the monotone-charge rule.
fn page(ftl: &NoFtl, byte: u8) -> Vec<u8> {
    let n = ftl.device().config().geometry.page_size;
    let mut v = vec![0xFF; n];
    v[..n / 2].fill(byte);
    v
}

#[test]
fn permanent_program_fault_retires_block_and_remaps_write() {
    let plan = FaultPlan::default().with_scripted(FaultOp::Program, 0, true);
    let mut ftl = ftl_with(plan, 0.0, |_| {});
    let data = page(&ftl, 0xAB);
    // The very first program fails permanently; the write must still
    // succeed on a remapped residency, with the block retired.
    ftl.write_page(R, Lba(0), &data, IoCtx::default()).unwrap();
    let (got, _) = ftl.read_page(R, Lba(0), IoCtx::default()).unwrap();
    assert_eq!(got, data);
    let stats = ftl.region_stats(R).unwrap();
    assert_eq!(stats.retired_blocks, 1);
    assert_eq!(ftl.device().stats().retired_blocks, 1);
    assert_eq!(ftl.device().stats().program_failures, 1);
}

#[test]
fn transient_program_fault_spends_retry_budget_only() {
    let plan = FaultPlan::default().with_scripted(FaultOp::Program, 0, false);
    let mut ftl = ftl_with(plan, 0.0, |_| {});
    let data = page(&ftl, 0x5C);
    ftl.write_page(R, Lba(3), &data, IoCtx::default()).unwrap();
    let (got, _) = ftl.read_page(R, Lba(3), IoCtx::default()).unwrap();
    assert_eq!(got, data);
    let stats = ftl.region_stats(R).unwrap();
    assert_eq!(stats.program_retries, 1);
    assert_eq!(stats.retired_blocks, 0, "a transient fault must not retire the block");
}

#[test]
fn delta_fault_falls_back_out_of_place_and_is_traced() {
    let plan = FaultPlan::default().with_scripted(FaultOp::DeltaProgram, 0, false);
    let mut ftl = ftl_with(plan, 0.0, |_| {});
    let trace = TraceHandle::new(1024);
    ftl.attach_observer(trace.observer());

    let data = page(&ftl, 0x11);
    ftl.write_page(R, Lba(7), &data, IoCtx::default()).unwrap();
    // The first delta append fails; the layer must transparently rewrite
    // the whole page out of place with the delta applied.
    ftl.write_delta(R, Lba(7), 16, &[0xEE; 8], IoCtx::default()).unwrap();

    let (got, _) = ftl.read_page(R, Lba(7), IoCtx::default()).unwrap();
    let mut expect = data.clone();
    expect[16..24].fill(0xEE);
    assert_eq!(got, expect);

    let stats = ftl.region_stats(R).unwrap();
    assert_eq!(stats.delta_fallbacks, 1);
    assert_eq!(stats.host_delta_writes, 0, "the failed append is not a delta write");
    assert_eq!(ftl.device().stats().delta_program_failures, 1);

    // Both the failure and the fallback are visible in the trace, with
    // region/LBA attribution.
    let events = trace.snapshot();
    let fault = events.iter().find(|e| e.kind == EventKind::DeltaFault);
    let fallback = events.iter().find(|e| e.kind == EventKind::DeltaFallback);
    assert!(fault.is_some(), "DeltaFault missing from trace");
    let fb = fallback.expect("DeltaFallback missing from trace");
    assert_eq!(fb.region, Some(0));
    assert_eq!(fb.lba, Some(7));
}

#[test]
fn erase_fault_retires_gc_victim_and_gc_reselects() {
    // Every erase fails permanently: each GC victim is retired after its
    // valid pages migrate. Writes keep succeeding until capacity truly
    // runs out — here the workload stays small enough to finish.
    let plan = FaultPlan::default().with_scripted(FaultOp::Erase, 0, true).with_scripted(
        FaultOp::Erase,
        1,
        true,
    );
    let mut ftl = ftl_at(plan, 0.0, 0.45, |f| {
        f.geometry.blocks_per_chip = 16;
        f.geometry.pages_per_block = 8;
    });
    let capacity = ftl.capacity(R).unwrap();
    // Overwrite the whole logical space a few times to force GC.
    for round in 0..4u8 {
        for lba in 0..capacity {
            let data = page(&ftl, round ^ lba as u8);
            ftl.write_page(R, Lba(lba), &data, IoCtx::default()).unwrap();
        }
    }
    let stats = ftl.region_stats(R).unwrap();
    assert!(stats.retired_blocks >= 2, "failed erases must retire the victims");
    assert_eq!(ftl.device().stats().erase_failures, 2);
    // All data still readable and current.
    for lba in 0..capacity {
        let (got, _) = ftl.read_page(R, Lba(lba), IoCtx::default()).unwrap();
        assert_eq!(got[0], 3 ^ lba as u8, "lba {lba}");
    }
}

#[test]
fn scrub_threshold_schedules_refresh_on_heavily_corrected_reads() {
    let mut ftl = ftl_with(FaultPlan::default(), 0.5, |f| {
        f.reliability.ecc_correctable_bits = 4;
    });
    let data = page(&ftl, 0x3D);
    ftl.write_page(R, Lba(1), &data, IoCtx::default()).unwrap();
    // Two raw bit errors reach the 0.5 * 4 threshold.
    ftl.inject_retention(R, Lba(1), &[10, 900]).unwrap();
    let (got, _) = ftl.read_page(R, Lba(1), IoCtx::default()).unwrap();
    assert_eq!(got, data, "correctable errors are corrected");
    assert_eq!(ftl.region_stats(R).unwrap().scrub_refreshes, 1);
    // The refresh rewrote the charge: the next read is clean again.
    let before = ftl.device().stats().corrected_bit_errors;
    ftl.read_page(R, Lba(1), IoCtx::default()).unwrap();
    assert_eq!(ftl.device().stats().corrected_bit_errors, before);
    assert_eq!(ftl.region_stats(R).unwrap().scrub_refreshes, 1, "no second refresh");
}

#[test]
fn fault_counters_flow_into_obs_snapshots() {
    let plan = FaultPlan::default().with_scripted(FaultOp::Program, 0, true).with_scripted(
        FaultOp::DeltaProgram,
        0,
        false,
    );
    let mut ftl = ftl_with(plan, 0.0, |_| {});
    let data = page(&ftl, 0x77);
    ftl.write_page(R, Lba(0), &data, IoCtx::default()).unwrap();
    ftl.write_delta(R, Lba(0), 0, &[1, 2, 3, 4], IoCtx::default()).unwrap();

    let snap = Snapshot::capture_noftl(&ftl);
    let v = snap.to_json();
    assert_eq!(v["flash"]["program_failures"], 1);
    assert_eq!(v["flash"]["delta_program_failures"], 1);
    assert_eq!(v["flash"]["retired_blocks"], 1);
    assert_eq!(v["regions"][0]["retired_blocks"], 1);
    assert_eq!(v["regions"][0]["delta_fallbacks"], 1);
    // And the delta of a snapshot with itself stays all-zero.
    let d = snap.delta_since(&snap);
    assert_eq!(d.flash.program_failures, 0);
    assert_eq!(d.regions[0].delta_fallbacks, 0);
}

#[test]
fn inactive_plan_draws_nothing_and_counts_nothing() {
    // The zero-fault guarantee behind the bit-identical criterion: a
    // default plan leaves every fault counter at zero however much I/O
    // runs through the device.
    let mut ftl = ftl_with(FaultPlan::default(), 0.0, |_| {});
    let capacity = ftl.capacity(R).unwrap().min(32);
    let delta_at = ftl.device().config().geometry.page_size / 2 + 8;
    for lba in 0..capacity {
        let data = page(&ftl, lba as u8);
        ftl.write_page(R, Lba(lba), &data, IoCtx::default()).unwrap();
        ftl.write_delta(R, Lba(lba), delta_at, &[9; 4], IoCtx::default()).unwrap();
    }
    let f = ftl.device().stats();
    assert_eq!(f.program_failures, 0);
    assert_eq!(f.delta_program_failures, 0);
    assert_eq!(f.erase_failures, 0);
    assert_eq!(f.retired_blocks, 0);
    let r = ftl.region_stats(R).unwrap();
    assert_eq!(r.program_retries, 0);
    assert_eq!(r.retired_blocks, 0);
    assert_eq!(r.delta_fallbacks, 0);
    assert_eq!(r.scrub_refreshes, 0);
}
