//! Multi-client executor invariants (DESIGN.md, "Concurrency & group
//! commit"): the serializability oracle over interleaved TPC-B runs, and
//! the bit-identity guarantee for a single-client pool with batching
//! disabled.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use ipa::core::NxM;
use ipa::engine::{Database, LockPolicy, Schedule};
use ipa::flash::{ObsEvent, Observer};
use ipa::workloads::tpcb::BALANCE_OFF;
use ipa::workloads::util::Record;
use ipa::workloads::{MultiRunner, Runner, SystemConfig, TpcB};

const SEED: u64 = 0x1DA5EED;

fn config(k: usize, batch: usize) -> SystemConfig {
    let mut cfg = SystemConfig::emulator(NxM::tpcb(), 0.5);
    cfg.group_commit_batch = batch;
    cfg.group_commit_timeout_ns = if batch > 1 { 1_000_000 } else { 0 };
    cfg.lock_policy = if k > 1 { LockPolicy::WaitDie } else { LockPolicy::NoWait };
    cfg
}

/// Every account balance, in aid order (branches and tellers are covered
/// by `verify_balances`' sums; accounts are read individually, so a
/// misrouted delta cannot hide behind a compensating error elsewhere).
fn account_balances(w: &TpcB, db: &mut Database) -> Vec<i32> {
    let accounts = w.branches * w.accounts_per_branch;
    let idx = w.account_index();
    (0..accounts)
        .map(|aid| {
            let encoded = db.index_lookup(idx, aid).unwrap().expect("account present");
            let rid = ipa::engine::Rid::decode(0, encoded);
            Record::get_i32(&db.heap_read_unlocked(rid).unwrap(), BALANCE_OFF)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serializability oracle: whatever interleaving the pool's schedule
    /// produces — round-robin or weighted, with or without group commit —
    /// the final database state equals the one serial execution of the
    /// same per-client transaction streams, and the money-conservation
    /// audit holds on both sides.
    #[test]
    fn any_interleaving_matches_a_serial_order(
        k in 1usize..=5,
        txns_per_client in 1u64..=25,
        sched_seed in any::<u64>(),
        weighted in any::<bool>(),
        batch in 1usize..=4,
    ) {
        let schedule = if weighted {
            // Skewed but nonzero weights, so every client still finishes.
            Schedule::Weighted((0..k as u32).map(|i| i + 1).collect())
        } else {
            Schedule::RoundRobin
        };

        // Interleaved run: K clients through one pool.
        let cfg = config(k, batch);
        let mut w = TpcB::new(2, 50);
        let mut db = cfg.build_for(&w).unwrap();
        let runner = Runner::new(SEED);
        runner.setup(&mut db, &mut w).unwrap();
        let shared = w.into_shared();
        let clients = TpcB::spawn_clients(&shared, k, txns_per_client, SEED);
        let mut multi = MultiRunner::new(sched_seed);
        multi.schedule = schedule;
        let report = multi.run(&mut db, clients).unwrap();
        prop_assert_eq!(report.pool.committed, k as u64 * txns_per_client,
            "every client transaction commits exactly once");
        let conserved = shared.borrow().verify_balances(&mut db).unwrap();
        let interleaved = account_balances(&shared.borrow(), &mut db);

        // Serial comparator: the same clients, one at a time, on a fresh
        // but identically-loaded database — one specific serial order.
        let cfg = config(1, 1);
        let mut w = TpcB::new(2, 50);
        let mut db2 = cfg.build_for(&w).unwrap();
        runner.setup(&mut db2, &mut w).unwrap();
        let shared2 = w.into_shared();
        let serial_runner = MultiRunner::new(sched_seed);
        let mut all = TpcB::spawn_clients(&shared2, k, txns_per_client, SEED);
        for client in all.drain(..) {
            serial_runner.run(&mut db2, vec![client]).unwrap();
        }
        let serial_conserved = shared2.borrow().verify_balances(&mut db2).unwrap();
        let serial = account_balances(&shared2.borrow(), &mut db2);

        prop_assert_eq!(conserved, serial_conserved,
            "same committed work on both sides");
        prop_assert_eq!(interleaved, serial,
            "interleaved final state diverged from the serial order");
    }
}

/// Ordered flash/engine event tape (same shape as the determinism test in
/// `ipa-workloads`): aggregate counters can collide, the event-by-event
/// sequence cannot unless the executions really are identical.
type Event = (String, Option<u32>, Option<u64>);
#[derive(Clone, Default)]
struct Tape(Arc<Mutex<Vec<Event>>>);
impl Observer for Tape {
    fn on_event(&mut self, event: ObsEvent) {
        self.0.lock().unwrap().push((format!("{:?}", event.kind), event.region, event.lba));
    }
}

/// The api_redesign compatibility contract: one client, batching off —
/// the pool must replay the exact engine call sequence of the serial
/// [`Runner`], so the trace (and therefore every PR-5 reconciliation
/// invariant) is bit-identical to the pre-pool pipeline.
#[test]
fn single_client_pool_without_batching_is_bit_identical_to_serial() {
    const TXNS: u64 = 200;

    // Serial runner.
    let cfg = config(1, 1);
    let mut w = TpcB::new(1, 100);
    let mut db = cfg.build_for(&w).unwrap();
    let runner = Runner::new(SEED);
    runner.setup(&mut db, &mut w).unwrap();
    let tape = Tape::default();
    db.attach_observer(Box::new(tape.clone()));
    runner.run(&mut db, &mut w, 0, TXNS).unwrap();
    db.detach_observer();
    let serial = Arc::try_unwrap(tape.0).unwrap().into_inner().unwrap();

    // One pool client, batching disabled, same seed.
    let cfg = config(1, 1);
    let mut w = TpcB::new(1, 100);
    let mut db = cfg.build_for(&w).unwrap();
    runner.setup(&mut db, &mut w).unwrap();
    let tape = Tape::default();
    db.attach_observer(Box::new(tape.clone()));
    let shared = w.into_shared();
    let clients = TpcB::spawn_clients(&shared, 1, TXNS, SEED);
    let report = MultiRunner::new(SEED).run(&mut db, clients).unwrap();
    db.detach_observer();
    let pooled = Arc::try_unwrap(tape.0).unwrap().into_inner().unwrap();

    assert_eq!(report.pool.committed, TXNS);
    assert_eq!(report.engine.group_commits, 0, "batching off: no group-commit batches");
    assert!(!serial.is_empty(), "measured runs must emit trace events");
    assert_eq!(serial.len(), pooled.len(), "trace lengths diverged");
    for (i, (s, p)) in serial.iter().zip(pooled.iter()).enumerate() {
        assert_eq!(s, p, "trace diverged at event {i}");
    }
}
