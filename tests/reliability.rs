//! Reliability-model integration: retention errors, Correct-and-Refresh
//! (the prior ISPP use case the paper builds on, §2.3), program
//! interference confined to append regions, and ECC behaviour across the
//! whole stack.

use ipa::core::NxM;
use ipa::flash::{
    CellType, FlashConfig, FlashDevice, FlashError, OpOrigin, PageKind, Ppa, ReadOutcome,
};
use ipa::noftl::{IpaMode, NoFtlConfig};

#[test]
fn correct_and_refresh_repairs_retention_drift() {
    // The Cai et al. "Correct-and-Refresh" scheme: periodically read,
    // ECC-correct, and re-program pages in place — itself an ISPP append.
    let mut cfg = FlashConfig::small_slc();
    cfg.reliability.ecc_correctable_bits = 8;
    let mut dev = FlashDevice::new(cfg);
    let ppa = Ppa::new(0, 0, 0);
    dev.program(ppa, &vec![0x3Cu8; 4096], OpOrigin::Host).unwrap();

    // Charge leaks over time.
    dev.inject_retention(ppa, &[10, 999, 2048, 4000]).unwrap();
    let (_, op) = dev.read(ppa, OpOrigin::Host).unwrap();
    assert_eq!(op.read_outcome, ReadOutcome::Corrected { corrected: 4 });

    // Refresh restores the charge; subsequent reads are clean.
    dev.refresh(ppa).unwrap();
    let (_, op) = dev.read(ppa, OpOrigin::Host).unwrap();
    assert_eq!(op.read_outcome, ReadOutcome::Clean);
}

#[test]
fn unrefreshed_drift_eventually_becomes_uncorrectable() {
    let mut cfg = FlashConfig::small_slc();
    cfg.reliability.ecc_correctable_bits = 3;
    let mut dev = FlashDevice::new(cfg);
    let ppa = Ppa::new(0, 0, 0);
    dev.program(ppa, &vec![0x00u8; 4096], OpOrigin::Host).unwrap();
    dev.inject_retention(ppa, &[1, 2, 3]).unwrap();
    assert!(dev.read(ppa, OpOrigin::Host).is_ok());
    dev.inject_retention(ppa, &[4]).unwrap();
    assert!(matches!(
        dev.read(ppa, OpOrigin::Host),
        Err(FlashError::UncorrectableEcc { bit_errors: 4, .. })
    ));
    // A refresh at this point cannot help: ECC cannot reconstruct.
    assert!(dev.refresh(ppa).is_err());
}

#[test]
fn interference_from_appends_never_corrupts_lsb_reads() {
    // Appendix C.2: appends on an LSB page disturb only erased cells of
    // neighbouring wordlines; LSB reads tolerate the shift, MSB reads
    // absorb errors in (unused) delta areas that ECC handles.
    let mut cfg = FlashConfig::openssd_mlc(8, 32, 2048);
    cfg.reliability.interference_bit_prob = 0.8;
    cfg.reliability.ecc_correctable_bits = 64;
    cfg.max_appends = Some(32); // lift the MLC NOP cap for this stress test
    let mut dev = FlashDevice::with_seed(cfg, 99);
    let geom = dev.config().geometry.clone();
    assert_eq!(geom.cell_type, CellType::Mlc);

    // Program a run of pages in order (MLC in-order rule), leaving a tail
    // of each erased (the delta area).
    let mut image = vec![0xFF; 2048];
    image[..1536].fill(0x5A);
    for p in 0..8 {
        dev.program(Ppa::new(0, 0, p), &image, OpOrigin::Host).unwrap();
    }
    // Hammer appends into the LSB page on wordline 1 (page index 2).
    for i in 0..16 {
        dev.program_partial(Ppa::new(0, 0, 2), 1536 + i as usize * 8, &[0x11; 8], OpOrigin::Host)
            .unwrap_or_else(|e| panic!("append {i}: {e}"));
    }
    // All LSB pages read back clean — bit errors only ever appear on MSB
    // neighbours, and ECC corrects them.
    for p in 0..8u32 {
        let (data, op) = dev.read(Ppa::new(0, 0, p), OpOrigin::Host).unwrap();
        if geom.page_kind(p) == PageKind::Lsb {
            assert_eq!(op.read_outcome, ReadOutcome::Clean, "LSB page {p}");
            if p != 2 {
                assert_eq!(data, image, "LSB page {p} content");
            }
        } else {
            // MSB pages may have been disturbed, but ECC must cover it.
            assert_eq!(&data[..1536], &image[..1536], "MSB page {p} body");
        }
    }
    assert!(dev.stats().injected_bit_errors > 0, "interference model exercised");
}

#[test]
fn engine_survives_interference_under_ipa_load() {
    // Full stack with the error model switched on: an IPA-heavy workload
    // on MLC flash in pSLC mode must stay correct while interference and
    // ECC do their thing underneath.
    let mut flash = FlashConfig::openssd_mlc(16, 16, 1024);
    flash.reliability.interference_bit_prob = 0.3;
    flash.reliability.ecc_correctable_bits = 64;
    let cfg = NoFtlConfig::single_region(flash, IpaMode::PSlc, 0.3);
    let mut db = ipa::engine::Database::builder(cfg)
        .scheme(NxM::new(2, 8, 12))
        .config(ipa::engine::DbConfig::eager(24))
        .open()
        .unwrap();
    let heap = db.create_heap(0);
    let mut tx = db.txn();
    let mut rids = Vec::new();
    for i in 0..100u8 {
        rids.push(tx.heap_insert(heap, &[i; 24]).unwrap());
    }
    tx.commit().unwrap();
    db.flush_all().unwrap();
    for round in 1..=10u8 {
        let mut tx = db.txn();
        for (i, rid) in rids.iter().enumerate().step_by(3) {
            let mut rec = tx.db().heap_read_unlocked(*rid).unwrap();
            rec[0] = (i as u8).wrapping_add(round);
            tx.heap_update(heap, *rid, &rec).unwrap();
        }
        tx.commit().unwrap();
        db.background_work().unwrap();
    }
    db.flush_all().unwrap();
    for (i, rid) in rids.iter().enumerate() {
        let rec = db.heap_read_unlocked(*rid).unwrap();
        if i % 3 == 0 {
            assert_eq!(rec[0], (i as u8).wrapping_add(10), "tuple {i}");
        } else {
            assert_eq!(rec[0], i as u8, "tuple {i}");
        }
        assert_eq!(&rec[1..], &[i as u8; 23][..], "tuple {i} tail");
    }
    assert!(db.stats().ipa_flushes > 0);
}
