//! Model-based property test of the paged B+-tree against a BTreeMap,
//! including flush/refetch cycles so node images round-trip through the
//! flash layer.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ipa::core::NxM;
use ipa::engine::{Database, DbConfig};
use ipa::flash::FlashConfig;
use ipa::noftl::{IpaMode, NoFtlConfig};

fn db() -> Database {
    let mut flash = FlashConfig::small_slc();
    flash.geometry.page_size = 1024;
    let cfg = NoFtlConfig::single_region(flash, IpaMode::Slc, 0.2);
    Database::builder(cfg).scheme(NxM::new(2, 16, 12)).config(DbConfig::eager(48)).open().unwrap()
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Delete(u64),
    Lookup(u64),
    Range(u64, u64),
    FlushAll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..2000, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (0u64..2000).prop_map(Op::Delete),
        2 => (0u64..2000).prop_map(Op::Lookup),
        1 => (0u64..2000, 0u64..200).prop_map(|(lo, w)| Op::Range(lo, lo + w)),
        1 => Just(Op::FlushAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn btree_matches_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut d = db();
        let idx = d.create_index(0).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut tx = d.txn();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let r = tx.index_insert(idx, k, v);
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                        r.unwrap();
                        e.insert(v);
                    } else {
                        prop_assert!(r.is_err(), "duplicate {k} must be rejected");
                    }
                }
                Op::Delete(k) => {
                    let got = tx.index_delete(idx, k).unwrap();
                    prop_assert_eq!(got, model.remove(&k));
                }
                Op::Lookup(k) => {
                    prop_assert_eq!(tx.index_lookup(idx, k).unwrap(), model.get(&k).copied());
                }
                Op::Range(lo, hi) => {
                    let got = tx.index_range(idx, lo, hi).unwrap();
                    let want: Vec<(u64, u64)> =
                        model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                    prop_assert_eq!(got, want);
                }
                Op::FlushAll => {
                    tx.db().flush_all().unwrap();
                }
            }
        }
        // Final full-range equivalence.
        let got = tx.index_range(idx, u64::MIN, u64::MAX).unwrap();
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
    }
}

#[test]
fn btree_survives_flush_evict_cycles_with_many_keys() {
    let mut d = db();
    let idx = d.create_index(0).unwrap();
    let mut tx = d.txn();
    let mut model = BTreeMap::new();
    for i in 0..3_000u64 {
        let k = i.wrapping_mul(0x9E37_79B9).rotate_left(11) % 1_000_000;
        if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
            e.insert(i);
            tx.index_insert(idx, k, i).unwrap();
        }
        if i % 500 == 0 {
            tx.db().flush_all().unwrap();
        }
    }
    tx.commit().unwrap();
    d.flush_all().unwrap();
    // Evict everything; lookups must come back from flash.
    for _ in 0..48 {
        d.new_page(0).unwrap();
    }
    for (k, _) in model.iter().take(300) {
        assert!(d.index_lookup(idx, *k).unwrap().is_some(), "key {k}");
    }
    let total = d.index_count(idx).unwrap();
    assert_eq!(total as usize, model.len());
}
