//! Queued-I/O scheduler properties, end to end through the public API.
//!
//! 1. Linearizability: because validation, mapping updates and stats are
//!    applied at *submission*, a queued execution (deep host queue, drains
//!    at arbitrary points) must be indistinguishable from the serial
//!    depth-1 execution of the same command sequence — same per-op
//!    outcomes, same counters, same final flash contents. Only simulated
//!    time may differ.
//! 2. The acceptance timing claim: on a 4-chip emulator profile a batched
//!    eviction (`flush_all`) at queue depth 4 takes measurably less
//!    simulated device time than at depth 1, while the OpenSSD profile
//!    (no NCQ) ignores the requested depth and reproduces the serial
//!    timings exactly.

use proptest::prelude::*;

use ipa::core::NxM;
use ipa::engine::{Database, DbConfig};
use ipa::flash::FlashConfig;
use ipa::noftl::{IoCtx, IpaMode, Lba, NoFtl, NoFtlConfig, RegionId};

const CHIPS: u32 = 4;
const LBAS: u64 = 48;
const PAGE: usize = 256;

fn ftl(depth: u32) -> NoFtl {
    let mut base = FlashConfig::emulator_slc(12, 8, PAGE);
    base.max_appends = Some(8);
    let cfg = NoFtlConfig::builder(base)
        .chips(CHIPS)
        .queue_depth(depth)
        .single_region(IpaMode::Slc, 0.35)
        .build()
        .unwrap();
    NoFtl::new(cfg).unwrap()
}

/// Body programmed, tail erased so deltas have somewhere to land.
fn image(byte: u8) -> Vec<u8> {
    let mut v = vec![0xFF; PAGE];
    v[..PAGE / 2].fill(byte);
    v
}

#[derive(Debug, Clone)]
enum Op {
    Write(u64, u8),
    Delta(u64, usize, u8),
    Read(u64),
    /// Drain every in-flight completion before continuing (a batch
    /// boundary in the queued execution; a no-op serially).
    Drain,
}

fn ops() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..LBAS, any::<u8>()).prop_map(|(l, b)| Op::Write(l, b)),
        2 => (0u64..LBAS, 0usize..8, any::<u8>()).prop_map(|(l, s, b)| Op::Delta(l, s, b)),
        2 => (0u64..LBAS).prop_map(Op::Read),
        1 => Just(Op::Drain),
    ]
}

/// Run the sequence either queued (submit, drain only at `Drain` marks and
/// at the end) or serially (sync wrappers). Returns each op's ok/err
/// outcome; errors surface at submission, so the patterns must agree.
fn apply(ftl: &mut NoFtl, queued: bool, ops: &[Op]) -> Vec<bool> {
    let rid = RegionId(0);
    let mut outcomes = Vec::new();
    for op in ops {
        let ok = match *op {
            Op::Write(l, b) => {
                if queued {
                    ftl.submit_write(rid, Lba(l), &image(b), IoCtx::host()).is_ok()
                } else {
                    ftl.write_page(rid, Lba(l), &image(b), IoCtx::host()).is_ok()
                }
            }
            Op::Delta(l, slot, b) => {
                let off = PAGE / 2 + slot * 8;
                if queued {
                    ftl.submit_write_delta(rid, Lba(l), off, &[b; 8], IoCtx::host()).is_ok()
                } else {
                    ftl.write_delta(rid, Lba(l), off, &[b; 8], IoCtx::host()).is_ok()
                }
            }
            Op::Read(l) => {
                if queued {
                    ftl.submit_read(rid, Lba(l), IoCtx::host()).is_ok()
                } else {
                    ftl.read_page(rid, Lba(l), IoCtx::host()).is_ok()
                }
            }
            Op::Drain => {
                ftl.drain_completions();
                true
            }
        };
        outcomes.push(ok);
    }
    ftl.drain_completions();
    outcomes
}

/// Non-timing flash counters: everything the workload determines, nothing
/// the schedule does (queue gauges and latency histograms may differ).
fn flash_counters(ftl: &NoFtl) -> [u64; 8] {
    let s = ftl.device().stats();
    [
        s.host_reads,
        s.host_programs,
        s.host_delta_programs,
        s.delta_bytes,
        s.gc_reads,
        s.gc_programs,
        s.erases,
        s.ispp_violations,
    ]
}

fn readback(ftl: &mut NoFtl) -> Vec<Option<Vec<u8>>> {
    (0..LBAS)
        .map(|l| ftl.read_page(RegionId(0), Lba(l), IoCtx::host()).ok().map(|(bytes, _)| bytes))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn queued_execution_linearizes_to_serial_order(seq in prop::collection::vec(ops(), 1..120)) {
        let mut serial = ftl(1);
        let mut queued = ftl(8);

        let serial_outcomes = apply(&mut serial, false, &seq);
        let queued_outcomes = apply(&mut queued, true, &seq);
        prop_assert_eq!(serial_outcomes, queued_outcomes);
        prop_assert_eq!(queued.device().host_inflight(), 0);

        // Same stats (scheduling must not change what work was done)...
        prop_assert_eq!(
            serial.region_stats(RegionId(0)).unwrap(),
            queued.region_stats(RegionId(0)).unwrap()
        );
        prop_assert_eq!(flash_counters(&serial), flash_counters(&queued));
        // ...and the same final flash contents.
        prop_assert_eq!(readback(&mut serial), readback(&mut queued));
    }
}

/// Build a database over `chips x 24 x 16` flash, dirty `pages` fresh
/// buffer pages and measure the simulated device time `flush_all` takes.
fn flush_device_time(flash: FlashConfig, depth: u32, pages: usize) -> u64 {
    let cfg = NoFtlConfig::builder(flash)
        .chips(CHIPS)
        .blocks_per_chip(24)
        .pages_per_block(16)
        .page_size(1024)
        .queue_depth(depth)
        .single_region(IpaMode::None, 0.2)
        .build()
        .unwrap();
    let mut db = Database::builder(cfg)
        .scheme(NxM::disabled())
        .config(DbConfig::eager(pages + 8))
        .open()
        .unwrap();
    for _ in 0..pages {
        db.new_page(0).unwrap();
    }
    let t0 = db.ftl().device().clock().now_ns();
    db.flush_all().unwrap();
    db.ftl().device().clock().now_ns() - t0
}

#[test]
fn batched_eviction_overlaps_on_emulator() {
    // The acceptance criterion: 4 chips, depth >= 4 -> the staged
    // `flush_all` batch overlaps program latencies across chips.
    let serial = flush_device_time(FlashConfig::emulator_slc(24, 16, 1024), 1, 32);
    let deep = flush_device_time(FlashConfig::emulator_slc(24, 16, 1024), 4, 32);
    assert!(
        deep * 2 <= serial,
        "expected >= 2x overlap speedup: depth-4 {deep} ns vs depth-1 {serial} ns"
    );
}

#[test]
fn openssd_ignores_requested_depth_and_stays_serial() {
    // No NCQ on the Jasmine board: a requested depth of 4 is clamped to 1
    // and the timings match the serial run bit for bit.
    let serial = flush_device_time(FlashConfig::openssd_mlc(24, 16, 1024), 1, 32);
    let requested_deep = flush_device_time(FlashConfig::openssd_mlc(24, 16, 1024), 4, 32);
    assert_eq!(serial, requested_deep, "OpenSSD profile must reproduce serial timings exactly");
}
