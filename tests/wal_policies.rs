//! WAL policy integration: eager log-space reclamation, checkpoints, and
//! the recovery-time consequences of the non-eager configuration — the
//! machinery behind the paper's §8.4 discussion of why the DBMS keeps
//! writing even with a 90% buffer.

use ipa::core::NxM;
use ipa::engine::{Database, DbConfig};
use ipa::flash::FlashConfig;
use ipa::noftl::{IpaMode, NoFtlConfig};

fn db_with_log(log_bytes: usize, reclaim_at: f64) -> Database {
    let mut flash = FlashConfig::small_slc();
    flash.geometry.page_size = 1024;
    let cfg = NoFtlConfig::single_region(flash, IpaMode::Slc, 0.2);
    let mut dbc = DbConfig::eager(32);
    dbc.log_capacity_bytes = log_bytes;
    dbc.log_reclaim_threshold = reclaim_at;
    Database::builder(cfg).scheme(NxM::tpcb()).config(dbc).open().unwrap()
}

#[test]
fn eager_log_reclamation_forces_flushes_and_checkpoints() {
    // A tiny log with a 37.5% threshold: sustained updates must trigger
    // reclamation rounds, each flushing dirty pages and checkpointing.
    let mut db = db_with_log(20_000, 0.375);
    let heap = db.create_heap(0);
    let mut tx = db.txn();
    let mut rids = Vec::new();
    for i in 0..50u8 {
        rids.push(tx.heap_insert(heap, &[i; 32]).unwrap());
    }
    tx.commit().unwrap();
    db.flush_all().unwrap();

    for round in 0..60u8 {
        let mut tx = db.txn();
        for rid in rids.iter().step_by(7) {
            let mut rec = tx.db().heap_read_unlocked(*rid).unwrap();
            rec[1] = round;
            tx.heap_update(heap, *rid, &rec).unwrap();
        }
        tx.commit().unwrap();
        db.background_work().unwrap();
    }
    let s = db.stats();
    assert!(s.log_reclaims > 0, "log reclamation must have run: {s:?}");
    assert!(s.checkpoints >= s.log_reclaims, "each reclaim checkpoints");
    // Data intact.
    for (i, rid) in rids.iter().enumerate() {
        let rec = db.heap_read_unlocked(*rid).unwrap();
        assert_eq!(rec[0], i as u8);
    }
}

#[test]
fn non_eager_log_accumulates_until_full() {
    // Threshold 1.0: no proactive reclamation; the log only reclaims when
    // an append finds it at capacity.
    let mut db = db_with_log(15_000, 1.0);
    let heap = db.create_heap(0);
    let mut tx = db.txn();
    let rid = tx.heap_insert(heap, &[0u8; 32]).unwrap();
    tx.commit().unwrap();
    db.flush_all().unwrap();

    let mut reclaims_seen = 0;
    for round in 0..400u32 {
        let mut tx = db.txn();
        let mut rec = tx.db().heap_read_unlocked(rid).unwrap();
        rec[..4].copy_from_slice(&round.to_le_bytes());
        tx.heap_update(heap, rid, &rec).unwrap();
        tx.commit().unwrap();
        db.background_work().unwrap();
        reclaims_seen = db.stats().log_reclaims;
    }
    // Emergency reclamation in log_for_tx kicked in at least once, and the
    // data survived.
    assert!(reclaims_seen > 0);
    let rec = db.heap_read_unlocked(rid).unwrap();
    assert_eq!(&rec[..4], &399u32.to_le_bytes());
}

#[test]
fn recovery_after_reclamation_replays_only_retained_log() {
    // After reclamation + checkpoint, the truncated log must still be
    // sufficient for correct recovery (flushed pages carry their state).
    let mut db = db_with_log(20_000, 0.375);
    let heap = db.create_heap(0);
    let mut tx = db.txn();
    let rid = tx.heap_insert(heap, &[7u8; 32]).unwrap();
    tx.commit().unwrap();
    db.flush_all().unwrap();

    for round in 0..80u8 {
        let mut tx = db.txn();
        let mut rec = tx.db().heap_read_unlocked(rid).unwrap();
        rec[0] = round;
        tx.heap_update(heap, rid, &rec).unwrap();
        tx.commit().unwrap();
        db.background_work().unwrap();
    }
    assert!(db.stats().log_reclaims > 0);
    db.force_log();
    db.simulate_crash();
    db.recover().unwrap();
    let rec = db.heap_read_unlocked(rid).unwrap();
    assert_eq!(rec[0], 79);
}

#[test]
fn active_transaction_pins_the_log_tail() {
    // A long-running transaction must keep its undo chain reclaimable:
    // reclamation cannot truncate past its first record, and an abort
    // after many reclaim rounds must still succeed.
    let mut db = db_with_log(20_000, 0.375);
    let heap = db.create_heap(0);
    let mut tx0 = db.txn();
    let rid = tx0.heap_insert(heap, &[1u8; 32]).unwrap();
    tx0.commit().unwrap();
    db.flush_all().unwrap();

    // Long-running transaction makes one early change and stays open.
    let mut long_tx = db.txn();
    let mut rec = long_tx.db().heap_read_unlocked(rid).unwrap();
    rec[0] = 0xEE;
    long_tx.heap_update(heap, rid, &rec).unwrap();
    let long_id = long_tx.park();

    // Other transactions churn the log past several reclamation rounds.
    let other = db.create_heap(0);
    for i in 0..60u8 {
        let mut tx = db.txn();
        tx.heap_insert(other, &[i; 64]).unwrap();
        tx.commit().unwrap();
        db.background_work().unwrap();
    }
    assert!(db.stats().log_reclaims > 0);

    // The long transaction can still roll back.
    db.resume(long_id).unwrap().abort().unwrap();
    assert_eq!(db.heap_read_unlocked(rid).unwrap(), vec![1u8; 32]);
}
