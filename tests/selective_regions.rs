//! Selective IPA via regions — the paper's claim II: "IPA can be
//! selectively applied to specific database objects (e.g. frequently
//! updated tables or indices) without extra DBA overhead. The rest of the
//! DB objects are not impacted."
//!
//! Mirrors the Figure 3 DDL: a `rgIPA` region for the hot table, a plain
//! region for everything else — one database, two policies.

use ipa::core::NxM;
use ipa::engine::{Database, DbConfig};
use ipa::flash::{CellType, FlashConfig};
use ipa::noftl::{IpaMode, NoFtlConfig, RegionSpec};

fn two_region_db() -> Database {
    let mut flash = FlashConfig::openssd_mlc(64, 16, 1024);
    flash.geometry.chips = 8;
    flash.geometry.cell_type = CellType::Mlc;
    let cfg = NoFtlConfig {
        flash,
        regions: vec![
            // CREATE REGION rgIPA (MAX_CHIPS=4, IPA_MODE = pSLC)
            RegionSpec::new("rgIPA", 0..4, IpaMode::PSlc).with_over_provisioning(0.3),
            // The cold region: no IPA.
            RegionSpec::new("rgPlain", 4..8, IpaMode::None).with_over_provisioning(0.3),
        ],
        gc_low_watermark: 2,
        fault_policy: Default::default(),
    };
    // Region 0 gets the [2x4] scheme, region 1 the [0x0] baseline layout.
    Database::builder(cfg)
        .scheme(NxM::tpcb())
        .scheme(NxM::disabled())
        .config(DbConfig::eager(48))
        .open()
        .unwrap()
}

#[test]
fn hot_table_appends_cold_table_does_not() {
    let mut db = two_region_db();
    let hot = db.create_heap(0); // lives in rgIPA
    let cold = db.create_heap(1); // lives in rgPlain

    // Same access pattern against both tables.
    let mut tx = db.txn();
    let mut hot_rids = Vec::new();
    let mut cold_rids = Vec::new();
    for i in 0..50u8 {
        hot_rids.push(tx.heap_insert(hot, &[i; 20]).unwrap());
        cold_rids.push(tx.heap_insert(cold, &[i; 20]).unwrap());
    }
    tx.commit().unwrap();
    db.flush_all().unwrap();

    for round in 1..=6u8 {
        let mut tx = db.txn();
        for i in (0..50).step_by(5) {
            let mut h = tx.db().heap_read_unlocked(hot_rids[i]).unwrap();
            h[0] = h[0].wrapping_add(round);
            tx.heap_update(hot, hot_rids[i], &h).unwrap();
            let mut c = tx.db().heap_read_unlocked(cold_rids[i]).unwrap();
            c[0] = c[0].wrapping_add(round);
            tx.heap_update(cold, cold_rids[i], &c).unwrap();
        }
        tx.commit().unwrap();
        db.flush_all().unwrap();
    }

    let hot_stats = db.region_stats(0).unwrap();
    let cold_stats = db.region_stats(1).unwrap();
    assert!(hot_stats.host_delta_writes > 0, "rgIPA must append in place");
    assert_eq!(cold_stats.host_delta_writes, 0, "rgPlain must never append");
    assert!(cold_stats.host_page_writes > 0);
    // Identical updates, different write economics.
    assert!(
        hot_stats.host_page_writes < cold_stats.host_page_writes,
        "IPA region: {} page writes vs plain region: {}",
        hot_stats.host_page_writes,
        cold_stats.host_page_writes
    );

    // Data identical in both.
    for i in 0..50usize {
        let h = db.heap_read_unlocked(hot_rids[i]).unwrap();
        let c = db.heap_read_unlocked(cold_rids[i]).unwrap();
        assert_eq!(h, c, "tuple {i}");
    }
}

#[test]
fn per_region_schemes_are_independent() {
    let mut db = two_region_db();
    // Page layouts differ: region 0 reserves a delta area, region 1 none.
    let l0 = db.layout(0);
    let l1 = db.layout(1);
    assert!(l0.delta_area_end() > l0.delta_area_start());
    assert_eq!(l1.delta_area_end(), l1.delta_area_start());

    // An index in the IPA region also benefits (the paper: "tables or
    // indices").
    let idx = db.create_index(0).unwrap();
    let mut tx = db.txn();
    for k in 0..64u64 {
        tx.index_insert(idx, k, k).unwrap();
    }
    tx.commit().unwrap();
    db.flush_all().unwrap();
    db.reset_stats();
    // A single value change in a leaf is a small update -> delta append.
    let mut tx = db.txn();
    tx.index_delete(idx, 63).unwrap();
    tx.index_insert(idx, 63, 999).unwrap();
    tx.commit().unwrap();
    db.flush_all().unwrap();
    assert!(
        db.stats().ipa_flushes >= 1,
        "index-page update should flush as IPA, stats: {:?}",
        db.stats()
    );
    assert_eq!(db.index_lookup(idx, 63).unwrap(), Some(999));
}

#[test]
fn recovery_spans_regions() {
    let mut db = two_region_db();
    let hot = db.create_heap(0);
    let cold = db.create_heap(1);
    let mut tx = db.txn();
    let hr = tx.heap_insert(hot, &[1u8; 8]).unwrap();
    let cr = tx.heap_insert(cold, &[2u8; 8]).unwrap();
    tx.commit().unwrap();
    db.flush_all().unwrap();

    let mut tx = db.txn();
    tx.heap_update(hot, hr, &[3u8; 8]).unwrap();
    tx.heap_update(cold, cr, &[4u8; 8]).unwrap();
    tx.commit().unwrap();

    db.simulate_crash();
    db.recover().unwrap();
    assert_eq!(db.heap_read_unlocked(hr).unwrap(), vec![3u8; 8]);
    assert_eq!(db.heap_read_unlocked(cr).unwrap(), vec![4u8; 8]);
}
