//! Engine edge cases: pool exhaustion, pin semantics, static wear
//! leveling through the public API, and delta-area physical layout checks
//! against the raw device.

use ipa::core::{ecc, NxM};
use ipa::engine::{Database, DbConfig, EngineError};
use ipa::flash::FlashConfig;
use ipa::noftl::{IoCtx, IpaMode, NoFtlConfig, RegionId};

fn db(frames: usize, scheme: NxM) -> Database {
    let mut flash = FlashConfig::small_slc();
    flash.geometry.page_size = 1024;
    flash.geometry.pages_per_block = 16;
    let cfg = NoFtlConfig::single_region(flash, IpaMode::Slc, 0.2);
    Database::builder(cfg).scheme(scheme).config(DbConfig::eager(frames)).open().unwrap()
}

#[test]
fn delta_records_are_physically_erased_until_appended() {
    // Cross-layer check: after an out-of-place flush, the on-flash delta
    // area must read 0xFF (erased); after an IPA flush, slot 0 must be
    // programmed and slot 1 still erased.
    let mut d = db(16, NxM::tpcc());
    let heap = d.create_heap(0);
    let mut tx = d.txn();
    let rid = tx.heap_insert(heap, &[9u8, 7, 7, 7]).unwrap();
    tx.commit().unwrap();
    d.flush_all().unwrap();

    let layout = *d.layout(0);
    let read_delta_area = |d: &mut Database| {
        let (bytes, _) =
            d.ftl_mut().read_page(RegionId(0), rid.page.lba, IoCtx::default()).expect("mapped");
        bytes[layout.delta_area_start()..layout.delta_area_end()].to_vec()
    };
    let area = read_delta_area(&mut d);
    assert!(area.iter().all(|&b| b == 0xFF), "fresh page: delta area erased");

    let mut tx = d.txn();
    tx.heap_update(heap, rid, &[3u8, 7, 7, 7]).unwrap();
    tx.commit().unwrap();
    d.flush_all().unwrap();
    assert_eq!(d.stats().ipa_flushes, 1);

    let area = read_delta_area(&mut d);
    let slot = layout.scheme.delta_record_size();
    assert_ne!(area[0], 0xFF, "slot 0 control byte programmed");
    assert!(area[slot..].iter().all(|&b| b == 0xFF), "slot 1 still erased");
}

#[test]
fn pool_exhaustion_is_reported_not_hung() {
    let mut d = db(2, NxM::disabled());
    // Two new pages fill the pool as unpinned dirty frames — a third must
    // evict, which works. Pool exhaustion needs pins, which the public API
    // holds only transiently, so exercise eviction pressure instead.
    for _ in 0..6 {
        d.new_page(0).unwrap();
    }
    assert!(d.stats().evictions >= 4);
}

#[test]
#[allow(deprecated)] // the legacy TxId surface must keep rejecting ghosts
fn unknown_tx_is_rejected_everywhere() {
    let mut d = db(8, NxM::disabled());
    let heap = d.create_heap(0);
    let ghost = ipa::engine::TxId(999);
    assert!(matches!(d.heap_insert(ghost, heap, b"x"), Err(EngineError::UnknownTx(_))));
    assert!(matches!(d.commit(ghost), Err(EngineError::UnknownTx(_))));
    assert!(matches!(d.abort(ghost), Err(EngineError::UnknownTx(_))));
}

#[test]
fn dropped_guard_auto_aborts_and_is_counted() {
    let mut d = db(8, NxM::disabled());
    let heap = d.create_heap(0);
    let mut tx = d.txn();
    let rid = tx.heap_insert(heap, &[5u8; 8]).unwrap();
    tx.commit().unwrap();

    {
        let mut tx = d.txn();
        tx.heap_update(heap, rid, &[6u8; 8]).unwrap();
        // falls out of scope without commit() — RAII abort
    }
    assert_eq!(d.stats().drop_aborts, 1, "drop must count as an implicit abort");
    assert_eq!(d.heap_read_unlocked(rid).unwrap(), vec![5u8; 8], "update rolled back");
}

#[test]
fn ecc_initial_is_stable_across_ipa_flushes() {
    // The whole point of sectioned ECC: appends must not invalidate the
    // initial image's code.
    let mut d = db(16, NxM::tpcc());
    let heap = d.create_heap(0);
    let mut tx = d.txn();
    let rid = tx.heap_insert(heap, &[1u8, 2, 3, 4]).unwrap();
    tx.commit().unwrap();
    d.flush_all().unwrap();

    let layout = *d.layout(0);
    let (img0, _) = d.ftl_mut().read_page(RegionId(0), rid.page.lba, IoCtx::default()).unwrap();
    let code0 = ecc::initial_code(&img0, &layout);

    let mut tx = d.txn();
    tx.heap_update(heap, rid, &[2u8, 2, 3, 4]).unwrap();
    tx.commit().unwrap();
    d.flush_all().unwrap();
    assert_eq!(d.stats().ipa_flushes, 1);

    let (img1, _) = d.ftl_mut().read_page(RegionId(0), rid.page.lba, IoCtx::default()).unwrap();
    let code1 = ecc::initial_code(&img1, &layout);
    assert_eq!(code0, code1, "ECC_initial covers everything but the delta area");
    assert_ne!(img0, img1, "the image itself did change (delta appended)");
}

#[test]
fn wear_leveling_callable_through_database() {
    let mut d = db(16, NxM::disabled());
    let heap = d.create_heap(0);
    let mut tx = d.txn();
    for i in 0..64u8 {
        tx.heap_insert(heap, &[i; 48]).unwrap();
    }
    tx.commit().unwrap();
    d.flush_all().unwrap();
    // Static wear leveling with threshold 0 relocates the coldest block.
    let moved = d.wear_level(0, 0).unwrap();
    let _ = moved; // zero is fine on a fresh device; must not error
    let stats = d.region_stats(0).unwrap();
    assert_eq!(stats.gc_page_migrations, 0, "WL work is attributed separately");
}
