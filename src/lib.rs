//! # ipa — facade over the In-Place Appends reproduction stack
//!
//! Re-exports the crates that reproduce *"From In-Place Updates to In-Place
//! Appends: Revisiting Out-of-Place Updates on Flash"* (SIGMOD 2017):
//!
//! * [`flash`] — bit-accurate NAND flash simulator (ISPP monotone-charge
//!   programming, SLC/MLC, timing, wear, reliability).
//! * [`noftl`] — NoFTL-style flash management: regions, page-level mapping,
//!   garbage collection, wear leveling and the `write_delta` command.
//! * [`core`] — the paper's contribution: NSM page layout with a
//!   delta-record area, the [N×M] scheme, byte-level change tracking and the
//!   IPA advisor.
//! * [`engine`] — a Shore-MT-style storage engine: buffer pool, ARIES WAL,
//!   transactions, recovery, heap files and B+-trees.
//! * [`ipl`] — the In-Page Logging baseline (Lee & Moon, SIGMOD 2007).
//! * [`workloads`] — TPC-B, TPC-C, TATP and LinkBench-style generators.
//! * [`obs`] — cross-layer tracing and metrics: event ring buffer, JSONL
//!   export, snapshot/delta metrics registry and the report renderer.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ipa_core as core;
pub use ipa_engine as engine;
pub use ipa_flash as flash;
pub use ipa_ipl as ipl;
pub use ipa_noftl as noftl;
pub use ipa_obs as obs;
pub use ipa_workloads as workloads;
